"""Sharded-catalog suite: partitioner, distributed top-k, fault paths.

The heart of this suite is the multi-shard differential harness: a
500-community fleet partitioned 1/2/4/8 ways whose merged distributed
ranking must be byte-identical — pairs, similarities, orientation,
tie-breaks — to the single-host ``top_k_pairs`` on the union catalog,
including a skewed fleet where one hot component is split across
shards with replicated endpoints.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.analysis.sweeps import catalog_epsilon_sweep
from repro.apps import top_k_pairs
from repro.catalog import PersistentCatalog
from repro.core.errors import ConfigurationError
from repro.core.types import Community, CSJResult
from repro.engine import BatchEngine, PairJob
from repro.obs import MetricsRegistry
from repro.serve import (
    CatalogBackedStore,
    ReconnectingClient,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
)
from repro.shard import (
    PLAN_FILENAME,
    PartitionPlan,
    SHARD_COUNTERS,
    ShardCoordinator,
    ShardError,
    ShardFleet,
    ShardUnavailableError,
    partition_catalog,
    plan_partition,
)
from repro.testing import banded_community_fleet

pytestmark = pytest.mark.shard

EPSILON = 40


def ranking_key(scores):
    """The byte-identity fingerprint of a ranking."""
    return [
        (s.name_b, s.name_a, repr(s.similarity), s.result.n_matched)
        for s in scores
    ]


def make_catalog(path, communities):
    catalog = PersistentCatalog(path)
    catalog.register_many({c.name: c for c in communities})
    return catalog


def small_fleet():
    return banded_community_fleet(n_bands=6, per_band=4, users=10, dims=3, seed=5)


def big_fleet():
    """The 500-community differential fleet (100 bands x 5 members)."""
    return banded_community_fleet(
        n_bands=100, per_band=5, users=5, dims=3, seed=11
    )


def skewed_fleet():
    """Uniform bands plus one hot component that dwarfs them all.

    The hot component (one mega community plus five ratio-eligible
    partners, all candidates of each other) costs far more than the
    per-shard budget at 4 shards, so the partitioner must split it
    pair-wise with replicated endpoints or one shard serialises the
    sweep.  The hot band sits at counter value ~10000, far above the
    uniform bands, so it candidates with nothing else.
    """
    fleet = banded_community_fleet(
        n_bands=8, per_band=4, users=8, dims=3, seed=23
    )
    rng = np.random.default_rng(99)
    mega_base = rng.integers(0, 20, size=(120, 3)) + 10_000
    fleet.append(Community("hot-mega", mega_base))
    for member in range(5):
        noise = rng.integers(-2, 3, size=(70, 3))
        fleet.append(
            Community(f"hot-p{member}", np.maximum(mega_base[:70] + noise, 0))
        )
    return fleet


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_coverage_and_colocation(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            candidates = catalog.candidate_pairs(EPSILON)
            plan = partition_catalog(catalog, tmp_path / "p", 4, epsilon=EPSILON)
        covered = set()
        for spec in plan.shards:
            covered.update(spec.keys)
            with PersistentCatalog(tmp_path / "p" / spec.db) as shard_cat:
                assert shard_cat.keys() == sorted(spec.keys)
        assert covered == set(plan.metadata)
        for first, second in candidates:
            assert set(plan.shards_of(first)) & set(plan.shards_of(second)), (
                f"candidate pair ({first}, {second}) not co-located"
            )

    def test_plan_roundtrip(self, tmp_path):
        with make_catalog(tmp_path / "u.db", skewed_fleet()) as catalog:
            plan = plan_partition(catalog, 4, epsilon=EPSILON)
        reloaded = PartitionPlan.from_dict(plan.to_dict())
        assert reloaded.to_dict() == plan.to_dict()
        plan.save(tmp_path / PLAN_FILENAME)
        assert PartitionPlan.load(tmp_path / PLAN_FILENAME).to_dict() == plan.to_dict()

    def test_deterministic(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            first = plan_partition(catalog, 3, epsilon=EPSILON, seed=7)
            second = plan_partition(catalog, 3, epsilon=EPSILON, seed=7)
        assert first.to_dict() == second.to_dict()

    def test_skew_triggers_replication(self, tmp_path):
        with make_catalog(tmp_path / "u.db", skewed_fleet()) as catalog:
            split = plan_partition(catalog, 4, epsilon=EPSILON)
            lpt = plan_partition(catalog, 4, epsilon=EPSILON, replicate=False)
        assert split.stats["split_components"] >= 1
        assert split.replicated  # hot endpoints live on several shards
        assert split.pair_owners  # split pairs carry explicit owners
        # Without replication one shard owns the whole hot component and
        # the plan is badly imbalanced; splitting must do better.
        assert split.stats["imbalance"] < lpt.stats["imbalance"]

    def test_replicated_key_on_multiple_shards(self, tmp_path):
        with make_catalog(tmp_path / "u.db", skewed_fleet()) as catalog:
            plan = plan_partition(catalog, 4, epsilon=EPSILON)
        for key in plan.replicated:
            assert len(plan.shards_of(key)) >= 2

    def test_validation(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            with pytest.raises(ConfigurationError):
                plan_partition(catalog, 0, epsilon=EPSILON)
            with pytest.raises(ConfigurationError):
                plan_partition(catalog, 2, epsilon=-1)
        with PersistentCatalog(tmp_path / "empty.db") as empty:
            with pytest.raises(ConfigurationError):
                plan_partition(empty, 2, epsilon=EPSILON)

    def test_plan_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        with make_catalog(tmp_path / "u.db", skewed_fleet()) as catalog:
            plan_partition(catalog, 4, epsilon=EPSILON, metrics=metrics)
        assert metrics.counter("repro_shard_plans_total") == 1
        assert metrics.counter("repro_shard_replicas_total") >= 1


# ----------------------------------------------------------------------
# the multi-shard differential harness
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_merged_topk_byte_identical(self, tmp_path, n_shards):
        with make_catalog(tmp_path / "u.db", big_fleet()) as catalog:
            reference = top_k_pairs(catalog, epsilon=EPSILON, k=25)
            partition_catalog(
                catalog, tmp_path / "p", n_shards, epsilon=EPSILON
            )
        with ShardFleet(tmp_path / "p") as fleet:
            with fleet.coordinator() as coordinator:
                result = coordinator.top_k(epsilon=EPSILON, k=25)
        assert not result.degraded
        assert ranking_key(result.scores) == ranking_key(reference)

    def test_skewed_fleet_with_replication(self, tmp_path):
        metrics = MetricsRegistry()
        with make_catalog(tmp_path / "u.db", skewed_fleet()) as catalog:
            reference = top_k_pairs(catalog, epsilon=EPSILON, k=20)
            plan = partition_catalog(
                catalog, tmp_path / "p", 4, epsilon=EPSILON
            )
        assert plan.replicated  # the scenario must exercise dedup
        with ShardFleet(tmp_path / "p") as fleet:
            with fleet.coordinator(metrics=metrics) as coordinator:
                result = coordinator.top_k(epsilon=EPSILON, k=20)
        assert not result.degraded
        assert ranking_key(result.scores) == ranking_key(reference)
        # Replicated hot endpoints surface the same candidate pair on
        # several shards; the coordinator must count the dedup.
        assert metrics.counter("repro_shard_pairs_deduped_total") >= 1
        assert metrics.counter("repro_shard_requests_total") >= 4
        assert metrics.counter("repro_shard_pairs_merged_total") >= 1

    def test_epsilon_above_plan_epsilon_with_coverage(self, tmp_path):
        # Bands sit 500 counts apart, so epsilon 100 adds no inter-band
        # candidates: the plan's co-location still covers the query and
        # the distributed ranking stays byte-identical.
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            reference = top_k_pairs(catalog, epsilon=100, k=12)
            partition_catalog(catalog, tmp_path / "p", 4, epsilon=EPSILON)
        with ShardFleet(tmp_path / "p") as fleet:
            with fleet.coordinator() as coordinator:
                result = coordinator.top_k(epsilon=100, k=12)
        assert not result.degraded
        assert ranking_key(result.scores) == ranking_key(reference)

    def test_epsilon_above_plan_coverage_violation_raises(self, tmp_path):
        # Two bands only 100 apart: at plan epsilon 1 they are separate
        # components on separate shards, but at query epsilon 150 the
        # inter-band pairs become candidates no shard co-locates.
        fleet = banded_community_fleet(
            n_bands=2, per_band=3, users=6, dims=3, seed=9, band_gap=100
        )
        with make_catalog(tmp_path / "u.db", fleet) as catalog:
            partition_catalog(catalog, tmp_path / "p", 2, epsilon=1)
        with ShardFleet(tmp_path / "p") as shards:
            with shards.coordinator() as coordinator:
                with pytest.raises(ShardError, match="repartition"):
                    coordinator.top_k(epsilon=150, k=5)


# ----------------------------------------------------------------------
# shard loss
# ----------------------------------------------------------------------
class TestShardLoss:
    def _partitioned(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            partition_catalog(catalog, tmp_path / "p", 4, epsilon=EPSILON)

    def test_degraded_response_names_missing_shard(self, tmp_path):
        self._partitioned(tmp_path)
        metrics = MetricsRegistry()
        with ShardFleet(tmp_path / "p") as fleet:
            lost_keys = set(fleet.plan.shards[2].keys)
            fleet.stop_shard(2)
            with fleet.coordinator(metrics=metrics, retries=0, timeout=5.0) as coord:
                result = coord.top_k(epsilon=EPSILON, k=20, allow_partial=True)
        assert result.degraded
        assert result.missing == (2,)
        assert set(result.dropped_keys) == lost_keys
        assert metrics.counter("repro_shard_degraded_total") == 1
        assert metrics.counter("repro_shard_failures_total") >= 1

    def test_surviving_ranking_is_correct_subset(self, tmp_path):
        self._partitioned(tmp_path)
        with ShardFleet(tmp_path / "p") as fleet:
            fleet.stop_shard(1)
            with fleet.coordinator(retries=0, timeout=5.0) as coord:
                result = coord.top_k(epsilon=EPSILON, k=20, allow_partial=True)
            survivors = sorted(
                set(fleet.plan.metadata) - set(result.dropped_keys)
            )
        # The degraded ranking equals the single-host ranking over the
        # surviving universe: correct scores, nothing fabricated.
        with PersistentCatalog(tmp_path / "u.db") as catalog:
            reference = top_k_pairs(
                catalog, epsilon=EPSILON, k=20, keys=survivors
            )
        assert ranking_key(result.scores) == ranking_key(reference)

    def test_without_allow_partial_raises(self, tmp_path):
        self._partitioned(tmp_path)
        with ShardFleet(tmp_path / "p") as fleet:
            fleet.stop_shard(3)
            with fleet.coordinator(retries=0, timeout=5.0) as coord:
                with pytest.raises(ShardUnavailableError, match=r"\[3\]"):
                    coord.top_k(epsilon=EPSILON, k=5)

    def test_all_shards_down_raises_even_partial(self, tmp_path):
        self._partitioned(tmp_path)
        with ShardFleet(tmp_path / "p") as fleet:
            for shard in range(4):
                fleet.stop_shard(shard)
            plan = fleet.plan
            addresses = fleet.addresses
            with ShardCoordinator(
                plan, addresses, retries=0, timeout=5.0
            ) as coord:
                with pytest.raises(ShardUnavailableError):
                    coord.top_k(epsilon=EPSILON, k=5, allow_partial=True)


# ----------------------------------------------------------------------
# client reconnect regression
# ----------------------------------------------------------------------
class TestReconnectingClient:
    def test_retries_safe_op_across_server_restart(self):
        port = free_port()
        config = ServeConfig(port=port)
        first = ServerThread(config)
        first.start()
        try:
            client = ReconnectingClient("127.0.0.1", port, timeout=5.0, retries=2)
            assert client.request("health")["status"] == "ok"
            first.stop()
            restarted = ServerThread(ServeConfig(port=port))
            restarted.start()
            try:
                # The old connection is dead; a retry-safe op must be
                # transparently redialled and resent.
                assert client.request("health")["status"] == "ok"
                assert client.reconnects >= 1
            finally:
                restarted.stop()
            client.close()
        finally:
            first.stop()

    def test_unsafe_op_is_not_resent(self):
        port = free_port()
        first = ServerThread(ServeConfig(port=port))
        first.start()
        client = ReconnectingClient("127.0.0.1", port, timeout=5.0, retries=2)
        try:
            assert client.request("health")["status"] == "ok"
            first.stop()
            restarted = ServerThread(ServeConfig(port=port))
            restarted.start()
            try:
                # A mutation must never be silently resent: double
                # apply.  The caller gets the connection error instead.
                with pytest.raises(ServeError, match="mutate"):
                    client.request(
                        "mutate",
                        {"name": "x", "user_index": 0, "dim": 0, "amount": 1},
                    )
                # ... but the next safe request reconnects lazily.
                assert client.request("health")["status"] == "ok"
            finally:
                restarted.stop()
        finally:
            client.close()
            first.stop()

    def test_dial_failure_exhausts_retries(self):
        port = free_port()  # nothing listening
        client = ReconnectingClient("127.0.0.1", port, timeout=0.5, retries=1)
        with pytest.raises(ServeError, match="cannot connect"):
            client.request("health")
        client.close()


# ----------------------------------------------------------------------
# fleet protocol endpoints
# ----------------------------------------------------------------------
class TestFleetEndpoints:
    def test_candidates_parity_with_catalog(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            expected = catalog.candidate_pairs(EPSILON)
        with PersistentCatalog(tmp_path / "u.db") as catalog:
            store = CatalogBackedStore(catalog)
            with ServerThread(store=store) as st:
                with ServeClient(*st.address) as client:
                    response = client.candidates(epsilon=EPSILON)
        assert [tuple(p) for p in response["pairs"]] == expected
        assert response["count"] == len(expected)

    def test_join_batch_parity_with_engine(self, tmp_path):
        fleet = small_fleet()
        band0 = sorted(c.name for c in fleet if c.name.startswith("band0"))
        pairs = [(band0[0], band0[1]), (band0[0], band0[2]), (band0[1], band0[3])]
        roster = sorted(
            (c for c in fleet if c.name in set(band0)), key=lambda c: c.name
        )
        index_of = {c.name: i for i, c in enumerate(roster)}
        with BatchEngine(roster, n_jobs=1) as engine:
            outcomes = engine.run(
                [
                    PairJob.build(index_of[a], index_of[b], "ex-minmax", EPSILON)
                    for a, b in pairs
                ]
            )
        expected = {
            pair: outcome.result for pair, outcome in zip(pairs, outcomes)
        }
        with make_catalog(tmp_path / "u.db", fleet) as catalog:
            store = CatalogBackedStore(catalog)
            with ServerThread(store=store) as st:
                with ServeClient(*st.address) as client:
                    response = client.join_batch(
                        pairs,
                        epsilon=EPSILON,
                        method="ex-minmax",
                        include_results=True,
                    )
        assert response["count"] == len(pairs)
        entries = {
            (e["first"], e["second"]): CSJResult.from_dict(e["result"])
            for e in response["pairs"]
        }
        for pair, result in expected.items():
            served = entries[pair]
            assert repr(served.similarity) == repr(result.similarity)
            assert served.pairs == result.pairs
        # The stream arrives ranked, ready for the k-way merge.
        sims = [
            (-e["similarity"], e["first"], e["second"])
            for e in response["pairs"]
        ]
        assert sims == sorted(sims)

    def test_join_batch_validation(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            store = CatalogBackedStore(catalog)
            with ServerThread(store=store) as st:
                with ServeClient(*st.address) as client:
                    with pytest.raises(ServeError):
                        client.request("join_batch", {"pairs": [], "epsilon": 1})
                    with pytest.raises(ServeError):
                        client.request(
                            "join_batch",
                            {"pairs": [["a", "a"]], "epsilon": 1},
                        )
                    with pytest.raises(ServeError):
                        client.request(
                            "join_batch",
                            {"pairs": [["band0-m0", "band0-m1"]]},
                        )

    def test_server_stats_include_zeroed_shard_block(self):
        with ServerThread() as st:
            with ServeClient(*st.address) as client:
                stats = client.stats()
        assert stats["shard"] == {"requests": 0, "failures": 0, "degraded": 0}


# ----------------------------------------------------------------------
# single joins and sweeps through the coordinator
# ----------------------------------------------------------------------
class TestCoordinatorSweep:
    @pytest.fixture()
    def fleet_dir(self, tmp_path):
        with make_catalog(tmp_path / "u.db", small_fleet()) as catalog:
            partition_catalog(catalog, tmp_path / "p", 3, epsilon=EPSILON)
        return tmp_path

    def test_join_routes_to_owner(self, fleet_dir):
        with ShardFleet(fleet_dir / "p") as fleet:
            with fleet.coordinator() as coord:
                served = coord.join("band0-m0", "band0-m1", epsilon=EPSILON)
        assert served["disposition"] in {"computed", "cached"}
        assert served["result"]["similarity"] > 0.0

    def test_join_screened_pair_synthesised(self, fleet_dir):
        # Different bands: provably separated at plan epsilon, on
        # different shards — the coordinator answers from the plan.
        with ShardFleet(fleet_dir / "p") as fleet:
            pairs = {
                tuple(sorted((a, b))): fleet.plan.owner_of(a, b)
                for a in fleet.plan.metadata
                for b in fleet.plan.metadata
                if a < b
            }
            first, second = next(
                pair for pair, owner in pairs.items() if owner is None
            )
            with fleet.coordinator() as coord:
                served = coord.join(first, second, epsilon=EPSILON)
        assert served["disposition"] == "screened"
        assert served["result"]["similarity"] == 0.0

    def test_sweep_parity_with_catalog_sweep(self, fleet_dir):
        epsilons = [5, 20, 60]
        couples = [("band0-m0", "band0-m1"), ("band0-m0", "band3-m2")]
        with PersistentCatalog(fleet_dir / "u.db") as catalog:
            expected = {
                couple: catalog_epsilon_sweep(
                    catalog, couple[0], couple[1], epsilons
                )
                for couple in couples
            }
        with ShardFleet(fleet_dir / "p") as fleet:
            with fleet.coordinator() as coord:
                result = coord.sweep(couples, epsilons)
        assert not result.degraded
        for couple in couples:
            got = [
                (p.parameter, p.similarity_percent, p.n_matched)
                for p in result.curves[couple]
            ]
            want = [
                (p.parameter, p.similarity_percent, p.n_matched)
                for p in expected[couple]
            ]
            assert got == want

    def test_sweep_checkpoint_resume(self, fleet_dir, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        couples = [("band1-m0", "band1-m1")]
        metrics = MetricsRegistry()
        with ShardFleet(fleet_dir / "p") as fleet:
            with fleet.coordinator(metrics=metrics) as coord:
                first = coord.sweep(couples, [5, 20], checkpoint=checkpoint)
                assert first.resumed_cells == 0
                # A killed run leaves a torn trailing line; the loader
                # must skip it and recompute only that cell.
                with open(checkpoint, "a", encoding="utf-8") as fh:
                    fh.write('{"first": "band1-m0", "second"')
                second = coord.sweep(
                    couples, [5, 20, 60], checkpoint=checkpoint
                )
        assert second.resumed_cells == 2  # epsilon 5 and 20 reused
        assert metrics.counter("repro_shard_resumed_total") == 2
        points = second.curves[couples[0]]
        assert [p.parameter for p in points] == [5.0, 20.0, 60.0]
        # The resumed curve is complete and internally consistent.
        lines = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()
            if line.startswith("{") and line.endswith("}")
        ]
        assert {entry["epsilon"] for entry in lines} == {5, 20, 60}

    def test_sweep_validates_epsilons(self, fleet_dir):
        with ShardFleet(fleet_dir / "p") as fleet:
            with fleet.coordinator() as coord:
                with pytest.raises(ConfigurationError):
                    coord.sweep([("band0-m0", "band0-m1")], [])
                with pytest.raises(ConfigurationError):
                    coord.sweep([("band0-m0", "band0-m1")], [20, 5])


# ----------------------------------------------------------------------
# metrics and CLI
# ----------------------------------------------------------------------
class TestMetricsAndCli:
    def test_counter_family_is_complete(self):
        assert set(SHARD_COUNTERS) == {
            "repro_shard_plans_total",
            "repro_shard_replicas_total",
            "repro_shard_requests_total",
            "repro_shard_retries_total",
            "repro_shard_failures_total",
            "repro_shard_pairs_deduped_total",
            "repro_shard_pairs_merged_total",
            "repro_shard_degraded_total",
            "repro_shard_resumed_total",
        }

    def test_cli_prometheus_zero_initialises_shard_family(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "topk", "--scale", "0.001", "--couples", "4", "--k", "3",
                    "--telemetry-out", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        for name in SHARD_COUNTERS:
            assert f"{name} 0" in out

    def test_cli_shard_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        with make_catalog(tmp_path / "u.db", small_fleet()):
            pass
        assert (
            main(
                [
                    "shard", "partition", str(tmp_path / "u.db"),
                    str(tmp_path / "p"), "--shards", "3",
                    "--epsilon", str(EPSILON),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "partitioned 24 communities into 3 shards" in out
        assert (
            main(
                [
                    "shard", "topk", str(tmp_path / "p"),
                    "--epsilon", str(EPSILON), "--k", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("similarity=") == 4
        assert (
            main(
                [
                    "shard", "sweep", str(tmp_path / "p"),
                    "--pair", "band0-m0", "band0-m1",
                    "--epsilons", "5", "20",
                    "--checkpoint", str(tmp_path / "ckpt.jsonl"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "shard", "sweep", str(tmp_path / "p"),
                    "--pair", "band0-m0", "band0-m1",
                    "--epsilons", "5", "20",
                    "--checkpoint", str(tmp_path / "ckpt.jsonl"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed 2 checkpointed cells" in out
