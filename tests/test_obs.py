"""Tests for the observability subsystem (repro.obs).

Covers the registry primitives (counters/gauges/histograms, snapshot
and merge), the nestable stage timers, the JSON-lines telemetry format,
and the *accuracy* of the mirrored counters: the registry must agree
with the independent ground truth kept by the join cache and by the
``CSJResult`` event counts, including across parallel fan-out and an
LRU eviction boundary.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.events import EVENTS_METRIC
from repro.engine import BatchEngine, Disposition, JoinResultCache, PairJob
from repro.obs import (
    DISABLED,
    Histogram,
    JoinTelemetry,
    MetricsRegistry,
    StageClock,
    null_timer,
    read_jsonl,
    stage_timer,
    summarize_records,
    write_jsonl,
)
from repro.testing import banded_community_fleet

from tests.test_engine import all_pair_jobs, comparable


def sample_records() -> list[JoinTelemetry]:
    return [
        JoinTelemetry(
            first=0,
            second=1,
            method="ex-minmax",
            epsilon=1,
            disposition="computed",
            similarity=0.5,
            n_matched=6,
            size_b=12,
            size_a=14,
            swapped=False,
            screened=False,
            cache_hit=False,
            events={"match": 6, "no_match": 10},
            pairs_examined=16,
            comparisons=16,
            stage_seconds={"join": 0.01, "join.pairing": 0.008},
            elapsed_seconds=0.009,
            engine="numpy",
        ),
        JoinTelemetry(
            first=0,
            second=2,
            method="ex-minmax",
            epsilon=1,
            disposition="screened",
            similarity=0.0,
            n_matched=0,
            size_b=12,
            size_a=12,
            swapped=False,
            screened=True,
            cache_hit=False,
        ),
    ]


class TestRegistry:
    def test_counters_with_labels(self):
        registry = MetricsRegistry()
        registry.inc("events", 2, type="match")
        registry.inc("events", type="match")
        registry.inc("events", 5, type="no_match")
        registry.inc("plain")
        assert registry.counter("events", type="match") == 3
        assert registry.counter("events", type="no_match") == 5
        assert registry.counter("plain") == 1
        assert registry.counter("missing") == 0
        assert registry.counters_by_label("events", "type") == {
            "match": 3,
            "no_match": 5,
        }

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("entries", 3)
        registry.set_gauge("entries", 7)
        assert registry.gauge("entries") == 7.0
        assert registry.gauge("missing") is None

    def test_histogram_bookkeeping(self):
        histogram = Histogram()
        for value in (0.002, 0.02, 0.02, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(5.042)
        assert histogram.minimum == 0.002
        assert histogram.maximum == 5.0
        assert histogram.mean == pytest.approx(5.042 / 4)
        assert sum(histogram.bucket_counts) == histogram.count

    def test_histogram_overflow_lands_in_inf_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.bucket_counts == [0, 0, 1]

    def test_merge_registry_is_additive(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("jobs", 2, kind="a")
        right.inc("jobs", 3, kind="a")
        right.inc("jobs", 1, kind="b")
        left.observe("seconds", 0.1)
        right.observe("seconds", 0.3)
        right.set_gauge("entries", 9)
        left.merge(right)
        assert left.counter("jobs", kind="a") == 5
        assert left.counter("jobs", kind="b") == 1
        assert left.histogram("seconds").count == 2
        assert left.histogram("seconds").total == pytest.approx(0.4)
        assert left.gauge("entries") == 9.0

    def test_merge_snapshot_roundtrip(self):
        source = MetricsRegistry()
        source.inc("events", 4, type="match")
        source.inc("bare", 2)
        source.set_gauge("entries", 5, cache="main")
        source.observe("seconds", 0.25, stage="join")
        rebuilt = MetricsRegistry()
        rebuilt.merge(source.snapshot())
        assert rebuilt.snapshot() == source.snapshot()
        # JSON round-trip (the worker snapshots travel through pickle,
        # the run logs through JSON).
        rebuilt_json = MetricsRegistry()
        rebuilt_json.merge(json.loads(json.dumps(source.snapshot())))
        assert rebuilt_json.snapshot() == source.snapshot()

    def test_merge_order_independent_for_additive_kinds(self):
        parts = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.inc("jobs", index + 1)
            # Powers of two sum exactly in any order.
            registry.observe("seconds", 0.25 * 2**index)
            parts.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            forward.merge(part)
        for part in reversed(parts):
            backward.merge(part)
        assert forward.snapshot() == backward.snapshot()

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("jobs")
        registry.set_gauge("entries", 1)
        registry.observe("seconds", 0.1)
        registry.clear()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("repro_core_events_total", 3, type="match")
        registry.set_gauge("cache_entries", 2)
        registry.observe("repro_obs_stage_seconds", 0.02, stage="join")
        text = registry.to_prometheus()
        assert "# TYPE repro_core_events_total counter" in text
        assert 'repro_core_events_total{type="match"} 3' in text
        assert "# TYPE cache_entries gauge" in text
        assert "cache_entries 2" in text
        assert "# TYPE repro_obs_stage_seconds histogram" in text
        assert 'repro_obs_stage_seconds_bucket{stage="join",le="+Inf"} 1' in text
        assert 'repro_obs_stage_seconds_count{stage="join"} 1' in text
        # Cumulative buckets are monotone and end at the count.
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_obs_stage_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert bucket_values[-1] == 1

    def test_disabled_sentinel_and_null_timer(self):
        assert DISABLED is None
        assert stage_timer(DISABLED, "anything") is null_timer()
        with null_timer():
            pass  # no-op, reusable


class TestStageTimers:
    def test_nested_paths_are_dotted(self):
        registry = MetricsRegistry()
        clock = StageClock(registry)
        with clock.stage("join"):
            with clock.stage("pairing"):
                with clock.stage("encode"):
                    pass
            with clock.stage("matching"):
                pass
        assert set(clock.stage_seconds) == {
            "join",
            "join.pairing",
            "join.pairing.encode",
            "join.matching",
        }

    def test_children_sum_at_most_parent(self):
        registry = MetricsRegistry()
        clock = StageClock(registry)
        with clock.stage("join"):
            for _ in range(3):
                with clock.stage("pairing"):
                    sum(range(500))
            with clock.stage("validate"):
                pass
        seconds = clock.stage_seconds
        children = seconds["join.pairing"] + seconds["join.validate"]
        assert children <= seconds["join"] + 1e-9

    def test_disabled_clock_records_nothing(self):
        clock = StageClock(None)
        assert clock.stage("join") is null_timer()
        assert clock.enabled is False
        assert clock.stage_seconds == {}

    def test_stage_timer_observes_into_registry(self):
        registry = MetricsRegistry()
        with stage_timer(registry, "batch.execute"):
            pass
        histogram = registry.histogram("repro_obs_stage_seconds", stage="batch.execute")
        assert histogram is not None and histogram.count == 1


class TestTelemetryIO:
    def test_jsonl_roundtrip_with_header_and_snapshot(self, tmp_path):
        records = sample_records()
        registry = MetricsRegistry()
        registry.inc("repro_engine_jobs_total", 2, disposition="computed")
        path = tmp_path / "run.jsonl"
        summary = write_jsonl(
            path,
            records,
            header={"command": "topk", "k": 3},
            snapshot=registry.snapshot(),
        )
        header, parsed, trailer = read_jsonl(path)
        assert header["command"] == "topk" and header["k"] == 3
        assert parsed == records
        assert trailer["n_joins"] == summary.n_joins == 2
        assert trailer["metrics"] == registry.snapshot()
        assert summary.dispositions == {"computed": 1, "screened": 1}
        assert summary.events == {"match": 6, "no_match": 10}
        assert summary.matched_pairs == 6

    def test_jsonl_accepts_streams_and_ignores_unknown_kinds(self):
        stream = io.StringIO()
        write_jsonl(stream, sample_records())
        stream.write(json.dumps({"kind": "future-extension", "x": 1}) + "\n")
        stream.seek(0)
        header, parsed, trailer = read_jsonl(stream)
        assert header is None
        assert len(parsed) == 2
        assert trailer["kind"] == "summary"

    def test_summary_render_mentions_the_essentials(self):
        summary = summarize_records(sample_records())
        text = summary.render()
        assert "joins: 2" in text
        assert "computed=1" in text and "screened=1" in text
        assert "match" in text and "join.pairing" in text


class TestTelemetryAccuracy:
    """The mirrored counters must match independent ground truth."""

    def test_cache_counters_match_across_eviction_boundary(self):
        registry = MetricsRegistry()
        cache = JoinResultCache(max_entries=2, metrics=registry)
        fleet = banded_community_fleet(1, 4)
        jobs = all_pair_jobs(fleet)  # 6 distinct joins > capacity 2
        with BatchEngine(fleet, cache=cache, screen=False) as engine:
            engine.run(jobs)
            engine.run(jobs)  # partial hits: most entries were evicted
        assert cache.evictions > 0, "workload must cross the LRU boundary"
        assert registry.counter("repro_engine_cache_hits_total") == cache.hits
        assert registry.counter("repro_engine_cache_misses_total") == cache.misses
        assert registry.counter("repro_engine_cache_evictions_total") == cache.evictions
        assert registry.gauge("repro_engine_cache_entries") == len(cache)

    def test_event_counters_match_computed_results_serial(self):
        registry = MetricsRegistry()
        fleet = banded_community_fleet(2, 2)
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, metrics=registry) as engine:
            outcomes = engine.run(jobs)
        expected: dict[str, int] = {}
        for outcome in outcomes:
            if outcome.disposition is Disposition.COMPUTED:
                for name, count in outcome.result.events.as_dict().items():
                    expected[name] = expected.get(name, 0) + count
        mirrored = registry.counters_by_label(EVENTS_METRIC, "type")
        assert mirrored == {k: v for k, v in expected.items() if v}

    def test_stage_nesting_sums_below_join_wall_time(self):
        registry = MetricsRegistry()
        fleet = banded_community_fleet(1, 2, users=40)
        with BatchEngine(fleet, metrics=registry) as engine:
            outcome = engine.run([PairJob.build(0, 1, "ex-minmax", 2)])[0]
        seconds = outcome.result.stage_seconds
        assert seconds, "computed join must carry stage timings"
        # Per level: the direct children of any stage ran inside their
        # parent's interval, so their times sum to at most the parent's.
        for parent, parent_seconds in seconds.items():
            children = sum(
                child_seconds
                for child, child_seconds in seconds.items()
                if child.startswith(parent + ".") and "." not in child[len(parent) + 1 :]
            )
            assert children <= parent_seconds + 1e-9
        # The pairing stage wraps the same interval ``elapsed_seconds``
        # measures a superset of.
        assert seconds["join.pairing"] <= outcome.result.elapsed_seconds + 1e-9

    def test_disposition_counters_match_engine_stats(self):
        registry = MetricsRegistry()
        cache = JoinResultCache(max_entries=64)
        fleet = banded_community_fleet()
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, cache=cache, metrics=registry) as engine:
            engine.run(jobs)
            engine.run(jobs)
        stats = engine.stats()
        by_disposition = registry.counters_by_label(
            "repro_engine_jobs_total", "disposition"
        )
        assert by_disposition.get("computed", 0) == stats["computed"]
        assert by_disposition.get("screened", 0) == stats["screened"]
        assert by_disposition.get("cached", 0) == stats["cached"]
        assert registry.counter("repro_engine_envelope_tests_total") > 0
        assert (
            registry.counter("repro_engine_envelope_separations_total") == stats["screened"]
        )

    def test_parallel_merge_equals_serial_counters(self):
        fleet = banded_community_fleet(2, 3)
        jobs = all_pair_jobs(fleet)
        serial_registry, parallel_registry = MetricsRegistry(), MetricsRegistry()
        with BatchEngine(fleet, n_jobs=1, metrics=serial_registry) as engine:
            serial = engine.run(jobs)
        with BatchEngine(fleet, n_jobs=2, metrics=parallel_registry) as engine:
            parallel = engine.run(jobs)
        assert comparable(serial) == comparable(parallel)
        assert serial_registry.counters_by_label(
            EVENTS_METRIC, "type"
        ) == parallel_registry.counters_by_label(EVENTS_METRIC, "type")
        assert serial_registry.counter(
            "repro_algo_joins_total", method="ex-minmax", engine="numpy"
        ) == parallel_registry.counter(
            "repro_algo_joins_total", method="ex-minmax", engine="numpy"
        )

    def test_disabled_engine_emits_nothing(self):
        fleet = banded_community_fleet(1, 2)
        with BatchEngine(fleet) as engine:
            outcome = engine.run([PairJob.build(0, 1, "ex-minmax", 2)])[0]
        assert engine.telemetry == []
        assert outcome.result.stage_seconds == {}
