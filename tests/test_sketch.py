"""Tests for the sketch pre-filter tier (repro.sketch)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.types import Community
from repro.engine import (
    BatchEngine,
    Disposition,
    PairJob,
    community_envelope,
    envelopes_separated,
)
from repro.engine.batch import SKETCH_ENGINE
from repro.engine.envelope import separation_matrix, stack_envelopes
from repro.obs import MetricsRegistry
from repro.sketch import (
    RecallEstimator,
    SketchConfig,
    SketchIndex,
    SketchPrefilter,
    build_signature,
    init_sketch_metrics,
)
from repro.sketch.signature import band_offset, mix64
from repro.testing import banded_community_fleet as banded_fleet
from repro.testing import brute_force_candidate_pairs

pytestmark = pytest.mark.sketch


def all_pair_jobs(fleet, method="ex-minmax", epsilon=2):
    n = len(fleet)
    return [
        PairJob.build(i, j, method, epsilon)
        for i in range(n)
        for j in range(i + 1, n)
    ]


# ----------------------------------------------------------------------
# signatures
# ----------------------------------------------------------------------
class TestSignature:
    def test_mix64_is_deterministic_and_spread(self):
        values = {mix64(v) for v in range(256)}
        assert len(values) == 256
        assert mix64(12345) == mix64(12345)

    def test_band_offsets_stay_in_grid(self):
        for band in range(16):
            assert 0 <= band_offset(7, band, 5) < 5

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SketchConfig(epsilon=-1)
        with pytest.raises(ConfigurationError):
            SketchConfig(epsilon=1, mode="nope")
        with pytest.raises(ConfigurationError):
            SketchConfig(epsilon=1, n_bands=0)
        with pytest.raises(ConfigurationError):
            SketchConfig.for_target_recall(1, target_recall=0.0)

    def test_for_target_recall_selects_modes(self):
        exact = SketchConfig.for_target_recall(2, target_recall=1.0)
        assert exact.mode == "coverage" and exact.is_exact
        lossy = SketchConfig.for_target_recall(2, target_recall=0.9, n_dims=5)
        assert lossy.mode == "values" and not lossy.is_exact
        assert lossy.n_bands >= 1

    def test_signatures_are_seed_deterministic(self):
        fleet = banded_fleet(2, 2)
        config = SketchConfig.for_target_recall(1, target_recall=0.9, n_dims=5)
        first = build_signature(fleet[0], config)
        second = build_signature(fleet[0], config)
        assert first.cells == second.cells
        other_seed = SketchConfig.for_target_recall(
            1, target_recall=0.9, n_dims=5, seed=99
        )
        assert build_signature(fleet[0], other_seed).cells != first.cells

    def test_values_mode_truncates_to_band_rows(self):
        rng = np.random.default_rng(0)
        community = Community("wide", rng.integers(0, 10_000, size=(500, 3)))
        config = SketchConfig(epsilon=1, mode="values", n_bands=2, band_rows=8)
        signature = build_signature(community, config)
        assert all(
            len(cell) <= 8 for row in signature.cells for cell in row
        )


# ----------------------------------------------------------------------
# index
# ----------------------------------------------------------------------
class TestSketchIndex:
    def test_candidate_pairs_match_pairwise_admits(self):
        fleet = banded_fleet(3, 3)
        for target in (1.0, 0.9):
            config = SketchConfig.for_target_recall(
                2, target_recall=target, n_dims=fleet[0].n_dims
            )
            index = SketchIndex(fleet, config)
            enumerated = index.candidate_pairs()
            pairwise = {
                (i, j)
                for i in range(len(fleet))
                for j in range(i + 1, len(fleet))
                if index.collides(i, j)
            }
            assert enumerated == pairwise

    def test_admits_counts_metrics(self):
        fleet = banded_fleet(2, 2)
        metrics = MetricsRegistry()
        config = SketchConfig.for_target_recall(1, target_recall=1.0)
        index = SketchIndex(fleet, config, metrics=metrics)
        assert metrics.counter("repro_sketch_signatures_built_total") == len(fleet)
        index.admits(0, 1)
        index.admits(0, 3)
        checked = metrics.counter("repro_sketch_pairs_checked_total")
        skipped = metrics.counter("repro_sketch_pairs_skipped_total")
        collided = metrics.counter("repro_sketch_bucket_collisions_total")
        assert checked == 2
        assert skipped + collided == checked

    def test_coverage_is_superset_of_envelope_admits(self):
        fleet = banded_fleet(3, 4, users=16, dims=4, band_gap=40, high=30)
        epsilon = 3
        config = SketchConfig.for_target_recall(epsilon, target_recall=1.0)
        index = SketchIndex(fleet, config)
        envelopes = [community_envelope(c) for c in fleet]
        for i in range(len(fleet)):
            for j in range(i + 1, len(fleet)):
                if not envelopes_separated(envelopes[i], envelopes[j], epsilon):
                    assert index.collides(i, j)


# hypothesis: a recall-1.0 sketch never drops a pair the envelope
# screen admits, on arbitrary small community collections.
@st.composite
def community_collections(draw):
    n_dims = draw(st.integers(min_value=1, max_value=4))
    n_communities = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    spread = draw(st.integers(min_value=2, max_value=200))
    rng = np.random.default_rng(seed)
    communities = []
    for index in range(n_communities):
        n_users = int(rng.integers(1, 8))
        base = int(rng.integers(0, spread))
        vectors = rng.integers(base, base + spread, size=(n_users, n_dims))
        communities.append(Community(f"hyp-{index}", vectors))
    epsilon = draw(st.integers(min_value=0, max_value=8))
    return communities, epsilon


@settings(max_examples=60, deadline=None)
@given(community_collections())
def test_exact_sketch_never_drops_envelope_admits(collection):
    communities, epsilon = collection
    config = SketchConfig.for_target_recall(epsilon, target_recall=1.0)
    index = SketchIndex(communities, config)
    envelopes = [community_envelope(c) for c in communities]
    for i in range(len(communities)):
        for j in range(i + 1, len(communities)):
            if not envelopes_separated(envelopes[i], envelopes[j], epsilon):
                assert index.collides(i, j), (
                    f"coverage sketch dropped envelope-admitted pair "
                    f"({i}, {j}) at epsilon {epsilon}"
                )


# ----------------------------------------------------------------------
# recall accounting
# ----------------------------------------------------------------------
class TestRecallEstimator:
    def test_measured_recall_matches_brute_force(self):
        """Seeded regression: sampled recall tracks the exhaustive one."""
        fleet = banded_fleet(3, 4, users=14, dims=4, seed=11)
        epsilon = 2
        config = SketchConfig.for_target_recall(
            epsilon, target_recall=0.9, n_dims=4, seed=11
        )
        index = SketchIndex(fleet, config)
        # Exhaustive ground truth over every pair.
        true_pairs = []
        for i in range(len(fleet)):
            for j in range(i + 1, len(fleet)):
                if brute_force_candidate_pairs(
                    fleet[i].vectors, fleet[j].vectors, epsilon
                ):
                    true_pairs.append((i, j))
        assert true_pairs, "workload must have true candidates"
        exhaustive = sum(
            1 for i, j in true_pairs if index.collides(i, j)
        ) / len(true_pairs)
        estimator = RecallEstimator(fleet, seed=11, sample_pairs=40)
        report = estimator.measure(index)
        assert report.sampled_pairs > 0
        assert report.recall == pytest.approx(exhaustive, abs=0.15)
        # Determinism: same seed, same report.
        again = RecallEstimator(fleet, seed=11, sample_pairs=40).measure(index)
        assert again == report

    def test_exact_tier_reports_recall_one_without_sampling(self):
        fleet = banded_fleet(2, 2)
        prefilter = SketchPrefilter(target_recall=1.0)
        prefilter.bind(fleet)
        assert prefilter.recall(2) == 1.0
        assert prefilter.report(2).sampled_pairs == 0


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEnginePrefilter:
    @staticmethod
    def _payloads(outcomes):
        rows = []
        for outcome in outcomes:
            payload = outcome.result.to_dict()
            payload.pop("elapsed_seconds")  # wall-clock noise
            rows.append(payload)
        return rows

    def test_disabled_prefilter_is_byte_identical(self):
        fleet = banded_fleet(3, 3)
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet) as engine:
            baseline = self._payloads(engine.run(jobs))
        with BatchEngine(fleet, prefilter=None) as engine:
            assert self._payloads(engine.run(jobs)) == baseline

    def test_exact_prefilter_preserves_similarities(self):
        fleet = banded_fleet(3, 3)
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet) as engine:
            baseline = engine.run(jobs)
        prefilter = SketchPrefilter(target_recall=1.0)
        with BatchEngine(fleet, prefilter=prefilter) as engine:
            outcomes = engine.run(jobs)
            stats = engine.stats()
        assert [o.result.similarity for o in outcomes] == [
            o.result.similarity for o in baseline
        ]
        assert [o.result.n_matched for o in outcomes] == [
            o.result.n_matched for o in baseline
        ]
        assert stats["prefiltered"] == sum(
            1 for o in outcomes if o.disposition is Disposition.PREFILTERED
        )
        assert stats["sketch"]["exact"] is True

    def test_prefiltered_outcomes_are_marked(self):
        fleet = banded_fleet(2, 2, band_gap=1000)
        jobs = all_pair_jobs(fleet, epsilon=1)
        prefilter = SketchPrefilter(target_recall=1.0)
        with BatchEngine(fleet, prefilter=prefilter) as engine:
            outcomes = engine.run(jobs)
        dropped = [
            o for o in outcomes if o.disposition is Disposition.PREFILTERED
        ]
        assert dropped, "inter-band pairs must be prefiltered"
        for outcome in dropped:
            assert outcome.result.engine == SKETCH_ENGINE
            assert outcome.result.similarity == 0.0
            assert outcome.result.n_matched == 0

    def test_lossy_prefilter_folds_measured_recall_into_p(self):
        fleet = banded_fleet(3, 3)
        jobs = all_pair_jobs(fleet)
        prefilter = SketchPrefilter(target_recall=0.85, sample_pairs=12)
        with BatchEngine(fleet, prefilter=prefilter) as engine:
            outcomes = engine.run(jobs)
        recall = prefilter.recall(2)
        assert 0.0 < recall <= 1.0
        for outcome in outcomes:
            if outcome.disposition is Disposition.COMPUTED:
                assert outcome.result.p == pytest.approx(recall)
                if recall < 1.0:
                    assert outcome.result.exact is False

    def test_lossy_prefilter_never_corrupts_shared_cache(self):
        from repro.engine import JoinResultCache

        fleet = banded_fleet(2, 3)
        jobs = all_pair_jobs(fleet)
        cache = JoinResultCache(max_entries=64)
        prefilter = SketchPrefilter(target_recall=0.85)
        with BatchEngine(fleet, prefilter=prefilter, cache=cache) as engine:
            engine.run(jobs)
        # A later exact engine sharing the cache must see pure results.
        with BatchEngine(fleet, cache=cache) as engine:
            for outcome in engine.run(jobs):
                assert outcome.result.p == 1.0

    def test_metrics_family_emitted(self):
        fleet = banded_fleet(2, 2)
        metrics = MetricsRegistry()
        prefilter = SketchPrefilter(target_recall=1.0)
        with BatchEngine(fleet, prefilter=prefilter, metrics=metrics) as engine:
            engine.run(all_pair_jobs(fleet))
        assert metrics.counter("repro_sketch_signatures_built_total") == len(fleet)
        assert metrics.counter("repro_sketch_indexes_built_total") == 1
        assert metrics.counter("repro_sketch_pairs_checked_total") == 6

    def test_init_sketch_metrics_zero_values(self):
        metrics = MetricsRegistry()
        init_sketch_metrics(metrics)
        rendered = metrics.to_prometheus()
        assert "repro_sketch_pairs_skipped_total 0" in rendered
        assert 'repro_sketch_estimated_recall{epsilon="none"} 1' in rendered

    def test_prefilter_rebinds_to_new_collections(self):
        first = banded_fleet(2, 2, seed=1)
        second = banded_fleet(2, 2, seed=2)
        prefilter = SketchPrefilter(target_recall=1.0)
        with BatchEngine(first, prefilter=prefilter) as engine:
            engine.run(all_pair_jobs(first))
        assert prefilter.stats()["tiers"]
        with BatchEngine(second, prefilter=prefilter) as engine:
            engine.run(all_pair_jobs(second))
        # The tier was rebuilt for the new collection, not reused.
        assert len(prefilter.stats()["tiers"]) == 1

    def test_unbound_prefilter_raises(self):
        prefilter = SketchPrefilter()
        with pytest.raises(ConfigurationError):
            prefilter.admits(1, 0, 1)


# ----------------------------------------------------------------------
# vectorised envelope screening (satellite)
# ----------------------------------------------------------------------
class TestVectorisedScreen:
    def test_separation_matrix_matches_scalar(self):
        fleet = banded_fleet(3, 2, band_gap=30, high=25)
        envelopes = [community_envelope(c) for c in fleet]
        mins, maxs = stack_envelopes(envelopes)
        for epsilon in (0, 1, 5, 40):
            matrix = separation_matrix(mins, maxs, epsilon)
            for i in range(len(fleet)):
                for j in range(len(fleet)):
                    if i == j:
                        continue
                    assert bool(matrix[i, j]) == envelopes_separated(
                        envelopes[i], envelopes[j], epsilon
                    )

    def test_long_job_lists_screen_identically(self):
        """Above the vectorisation threshold results and metrics match."""
        fleet = banded_fleet(4, 3)  # 12 communities, 66 pairs >= threshold
        jobs = all_pair_jobs(fleet)
        serial_metrics = MetricsRegistry()
        with BatchEngine(fleet[:2], metrics=serial_metrics) as engine:
            engine.run(all_pair_jobs(fleet[:2]))  # short list: scalar path
        vector_metrics = MetricsRegistry()
        with BatchEngine(fleet, metrics=vector_metrics) as engine:
            outcomes = engine.run(jobs)
        assert vector_metrics.counter("repro_engine_envelope_tests_total") == len(
            jobs
        )
        screened = vector_metrics.counter(
            "repro_engine_envelope_separations_total"
        )
        assert screened == sum(
            1 for o in outcomes if o.disposition is Disposition.SCREENED
        )
        # Scalar recomputation agrees with every batch verdict.
        for outcome in outcomes:
            scalar = envelopes_separated(
                community_envelope(fleet[outcome.job.first]),
                community_envelope(fleet[outcome.job.second]),
                outcome.job.epsilon,
            )
            assert scalar == (outcome.disposition is Disposition.SCREENED)

    def test_envelope_memoised_per_community(self):
        fleet = banded_fleet(1, 2)
        first = community_envelope(fleet[0])
        second = community_envelope(fleet[0])
        assert first is second
        import dataclasses as dc

        clone = dc.replace(fleet[0], name="clone")
        assert "_envelope_cache" not in clone.__dict__
        assert community_envelope(clone) is not first
        np.testing.assert_array_equal(community_envelope(clone).mins, first.mins)
