"""Tests for dataset manifests (repro.datasets.manifest)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.datasets.manifest import (
    build_manifest,
    load_manifest,
    save_manifest,
    verify_manifest,
)

TINY = 1 / 4096


class TestBuildManifest:
    def test_structure(self):
        manifest = build_manifest(dataset="vk", seed=7, scale=TINY, couples=(1, 2))
        assert manifest["dataset"] == "vk"
        assert len(manifest["couples"]) == 2
        entry = manifest["couples"][0]
        assert entry["c_id"] == 1
        assert len(entry["digest_b"]) == 64
        assert entry["size_b"] > 0

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError):
            build_manifest(dataset="csv", couples=(1,))

    def test_unknown_couple(self):
        with pytest.raises(ValidationError):
            build_manifest(couples=(99,))


class TestVerifyManifest:
    def test_regeneration_matches(self):
        manifest = build_manifest(dataset="vk", seed=7, scale=TINY, couples=(1, 5))
        assert verify_manifest(manifest) == []

    def test_synthetic_regeneration_matches(self):
        manifest = build_manifest(
            dataset="synthetic", seed=3, scale=TINY, couples=(10,)
        )
        assert verify_manifest(manifest) == []

    def test_detects_tampering(self):
        manifest = build_manifest(dataset="vk", seed=7, scale=TINY, couples=(1,))
        manifest["couples"][0]["digest_b"] = "0" * 64
        mismatches = verify_manifest(manifest)
        assert mismatches
        assert "digest_b" in mismatches[0]

    def test_detects_seed_drift(self):
        manifest = build_manifest(dataset="vk", seed=7, scale=TINY, couples=(1,))
        manifest["seed"] = 8
        assert verify_manifest(manifest)

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValidationError, match="not a dataset manifest"):
            verify_manifest({"format": "something"})


class TestManifestIO:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(dataset="vk", seed=7, scale=TINY, couples=(1,))
        path = save_manifest(tmp_path / "manifest.json", manifest)
        loaded = load_manifest(path)
        assert loaded == manifest
        assert verify_manifest(loaded) == []

    def test_load_missing(self, tmp_path):
        with pytest.raises(ValidationError, match="no such manifest"):
            load_manifest(tmp_path / "ghost.json")
