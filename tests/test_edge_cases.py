"""Edge-case battery across the whole method suite.

Degenerate shapes (single users, one dimension), tie-heavy adversarial
inputs (identical encoded sums), duplicated users ("a pair can have the
same user", Section 3), boundary epsilons and large counter magnitudes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ALL_METHODS, csj_similarity
from repro.core.types import Community
from tests.conftest import assert_valid_matching, maximum_matching_size


class TestDegenerateShapes:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_user_each(self, method):
        b = Community("B", [[3, 4, 5]])
        a = Community("A", [[4, 3, 5]])
        result = csj_similarity(b, a, epsilon=1, method=method)
        assert result.similarity == 1.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_user_no_match(self, method):
        b = Community("B", [[0, 0, 0]])
        a = Community("A", [[10, 0, 0]])
        result = csj_similarity(b, a, epsilon=1, method=method)
        assert result.similarity == 0.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_one_dimension(self, method):
        rng = np.random.default_rng(1)
        b = Community("B", rng.integers(0, 10, size=(10, 1)))
        a = Community("A", rng.integers(0, 10, size=(12, 1)))
        result = csj_similarity(b, a, epsilon=1, method=method)
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    @pytest.mark.parametrize("method", ("ex-baseline", "ex-minmax"))
    def test_one_dimension_exact_reaches_oracle(self, method):
        rng = np.random.default_rng(2)
        vectors_b = rng.integers(0, 6, size=(12, 1))
        vectors_a = rng.integers(0, 6, size=(14, 1))
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = csj_similarity(
            b, a, epsilon=1, method=method, matcher="hopcroft_karp"
        )
        pairs = {
            (i, j)
            for i in range(12)
            for j in range(14)
            if abs(int(vectors_b[i, 0]) - int(vectors_a[j, 0])) <= 1
        }
        assert result.n_matched == maximum_matching_size(pairs)


class TestTieHeavyInputs:
    """All-equal encoded sums defeat the window pruning entirely; the
    algorithms must stay correct (only slower)."""

    def equal_sum_couple(self, seed: int) -> tuple[Community, Community]:
        rng = np.random.default_rng(seed)
        # Rows are permutations of each other: identical sums, varied
        # per-dimension values.
        base = np.array([0, 1, 2, 3, 4, 5])
        vectors_b = np.stack([rng.permutation(base) for _ in range(15)])
        vectors_a = np.stack([rng.permutation(base) for _ in range(18)])
        return Community("B", vectors_b), Community("A", vectors_a)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_valid_on_equal_sums(self, method):
        b, a = self.equal_sum_couple(3)
        result = csj_similarity(b, a, epsilon=1, method=method)
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    def test_exact_methods_agree_on_equal_sums(self):
        b, a = self.equal_sum_couple(4)
        baseline = csj_similarity(b, a, epsilon=1, method="ex-baseline")
        minmax = csj_similarity(b, a, epsilon=1, method="ex-minmax")
        assert set(baseline.pair_tuples()) == set(minmax.pair_tuples())

    def test_engines_agree_on_equal_sums(self):
        b, a = self.equal_sum_couple(5)
        for method in ("ap-minmax", "ex-minmax"):
            python = csj_similarity(b, a, epsilon=1, method=method, engine="python")
            numpy_ = csj_similarity(b, a, epsilon=1, method=method, engine="numpy")
            assert set(python.pair_tuples()) == set(numpy_.pair_tuples())


class TestDuplicatedUsers:
    """Section 3: "a pair can have the same user" — duplicates are
    legitimate and each copy can be matched independently."""

    def test_all_duplicates_fully_match(self):
        row = [5, 7, 9]
        b = Community("B", [row] * 6)
        a = Community("A", [row] * 8)
        for method in ALL_METHODS:
            result = csj_similarity(b, a, epsilon=0, method=method)
            assert result.similarity == 1.0, method

    def test_duplicates_limited_by_partner_count(self):
        b = Community("B", [[5, 5]] * 4)
        a = Community("A", [[5, 5], [5, 5], [100, 100], [100, 100]])
        result = csj_similarity(b, a, epsilon=0, method="ex-minmax")
        assert result.n_matched == 2


class TestMagnitudes:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_large_counters(self, method):
        rng = np.random.default_rng(8)
        base = rng.integers(10**8, 10**9, size=(10, 4))
        noisy = base + rng.integers(-1, 2, size=base.shape)
        b = Community("B", base)
        a = Community("A", noisy)
        result = csj_similarity(b, a, epsilon=1, method=method)
        assert result.similarity == 1.0

    def test_huge_epsilon_synthetic_scale(self):
        rng = np.random.default_rng(9)
        vectors = rng.integers(0, 500_000, size=(30, 27))
        b = Community("B", vectors)
        a = Community("A", np.maximum(vectors + rng.integers(-7500, 7501, size=vectors.shape), 0))
        result = csj_similarity(b, a, epsilon=15000, method="ex-minmax")
        assert result.similarity == 1.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_zero_vectors(self, method):
        b = Community("B", np.zeros((5, 4), dtype=np.int64))
        a = Community("A", np.zeros((6, 4), dtype=np.int64))
        result = csj_similarity(b, a, epsilon=0, method=method)
        assert result.similarity == 1.0


class TestSelfJoin:
    @pytest.mark.parametrize("method", ("ex-baseline", "ex-minmax", "ex-superego"))
    def test_community_vs_itself(self, method, vk_mini_couple):
        community, _ = vk_mini_couple
        twin = Community("twin", community.vectors)
        result = csj_similarity(community, twin, epsilon=0, method=method)
        assert result.similarity == 1.0
