"""Tests for the like-event stream simulator (repro.datasets.streams)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.incremental import IncrementalCommunity
from repro.datasets.streams import LikeEvent, LikeStreamSimulator, replay


def make_community(n_users: int = 5, n_dims: int = 6) -> IncrementalCommunity:
    rng = np.random.default_rng(3)
    return IncrementalCommunity(
        "Stream", n_dims, vectors=rng.integers(0, 10, size=(n_users, n_dims))
    )


class TestLikeEvent:
    def test_category_name(self):
        event = LikeEvent(tick=1, user_id=0, dimension=0)
        assert event.category == "Entertainment"

    def test_category_out_of_range(self):
        event = LikeEvent(tick=1, user_id=0, dimension=99)
        assert event.category == "dim_99"


class TestSimulator:
    def test_events_reference_subscribers(self):
        community = make_community()
        simulator = LikeStreamSimulator(community, seed=1)
        for event in simulator.events(50):
            assert event.user_id in community
            assert 0 <= event.dimension < community.n_dims

    def test_ticks_are_sequential(self):
        community = make_community()
        simulator = LikeStreamSimulator(community, seed=1)
        ticks = [event.tick for event in simulator.events(10)]
        assert ticks == list(range(1, 11))

    def test_reproducible_across_runs(self):
        events_a = list(
            LikeStreamSimulator(make_community(), seed=5).events(30)
        )
        events_b = list(
            LikeStreamSimulator(make_community(), seed=5).events(30)
        )
        assert events_a == events_b

    def test_different_seeds_differ(self):
        events_a = list(LikeStreamSimulator(make_community(), seed=1).events(30))
        events_b = list(LikeStreamSimulator(make_community(), seed=2).events(30))
        assert events_a != events_b

    def test_reinforcement_favours_existing_preferences(self):
        community = IncrementalCommunity(
            "Biased", 4, vectors=np.array([[100, 0, 0, 0]])
        )
        simulator = LikeStreamSimulator(community, seed=1, reinforcement=1.0)
        events = list(simulator.events(40))
        # With full reinforcement the dominant dimension keeps winning.
        assert sum(1 for e in events if e.dimension == 0) >= 35

    def test_invalid_reinforcement(self):
        with pytest.raises(ConfigurationError):
            LikeStreamSimulator(make_community(), reinforcement=1.5)

    def test_empty_community_rejected(self):
        empty = IncrementalCommunity("Empty", 3)
        simulator = LikeStreamSimulator(empty, seed=1)
        with pytest.raises(ConfigurationError, match="no subscribers"):
            list(simulator.events(1))

    def test_negative_n_rejected(self):
        simulator = LikeStreamSimulator(make_community(), seed=1)
        with pytest.raises(ConfigurationError):
            list(simulator.events(-1))


class TestReplay:
    def test_replay_applies_all_events(self):
        community = make_community()
        before = community.snapshot().vectors.sum()
        events = list(LikeStreamSimulator(community, seed=2).events(25))
        applied = replay(community, events)
        assert applied == 25
        assert community.snapshot().vectors.sum() == before + 25

    def test_replay_skips_departed_users(self):
        community = make_community(n_users=3)
        events = [
            LikeEvent(tick=1, user_id=0, dimension=0),
            LikeEvent(tick=2, user_id=1, dimension=0),
        ]
        community.unsubscribe(1)
        assert replay(community, events) == 1

    def test_counters_only_grow(self):
        community = make_community()
        before = community.snapshot().vectors
        events = LikeStreamSimulator(community, seed=4).events(60)
        replay(community, events)
        after = community.snapshot().vectors
        assert (after >= before).all()
