"""Differential harness for incremental delta joins.

The delta layer's entire correctness story is *equivalence*: after any
mutation stream, the maintained state must be byte-identical to a full
``ExBaseline(matcher="hopcroft_karp")`` join of the current snapshots in
every path-independent field — similarity, maximum-matching size, and
pairing events.  These tests replay seeded ``datasets.streams`` mutation
sequences and check that equivalence on **every prefix**:

* a Hypothesis property over random seeds and churn rates (core
  maintainer, structural events handled by rebuild);
* a deterministic 200+-event harness through the serving store and
  :class:`~repro.serve.store.DeltaJoinPool` (mutation log, catch-up
  replay, structural rebuilds, generation fencing);
* a concurrency test interleaving ``update`` with ``join``/``topk``
  from multiple client threads, asserting version monotonicity and
  that every response is consistent with a committed store version
  (no torn mid-delta reads).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ExBaseline
from repro.core import (
    Community,
    DeltaJoinMaintainer,
    IncrementalCommunity,
    ValidationError,
)
from repro.core.types import CSJResult
from repro.datasets import MutationStreamSimulator, apply_mutation
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.store import CommunityStore, DeltaJoinPool

pytestmark = pytest.mark.delta


def reference_join(first: Community, second: Community, epsilon: int) -> CSJResult:
    """The full recompute the delta path must be byte-identical to."""
    return ExBaseline(epsilon, matcher="hopcroft_karp").join(
        first, second, enforce_size_ratio=False
    )


def assert_equivalent(
    maintainer: DeltaJoinMaintainer,
    first: Community,
    second: Community,
    epsilon: int,
    context: object = "",
) -> None:
    """Byte-identity of every path-independent field vs full recompute."""
    full = reference_join(first, second, epsilon)
    assert maintainer.similarity == full.similarity, context
    assert maintainer.n_matched == full.n_matched, context
    assert maintainer.events.as_dict() == full.events.as_dict(), context
    assert maintainer.size_b == full.size_b, context
    assert maintainer.size_a == full.size_a, context


def make_incremental(name: str, n_users: int, seed: int, n_dims: int = 6):
    rng = np.random.default_rng([seed, n_users])
    vectors = rng.integers(0, 8, size=(n_users, n_dims), dtype=np.int64)
    return IncrementalCommunity(name, n_dims, vectors=vectors)


# ----------------------------------------------------------------------
# core maintainer: Hypothesis differential replay
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    churn=st.sampled_from([0.0, 0.1, 0.3]),
    epsilon=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_differential_replay_matches_full_join(seed, churn, epsilon):
    """After EVERY replayed event, delta state == full recompute."""
    left = make_incremental("left", 12, seed)
    right = make_incremental("right", 15, seed + 1)
    simulators = {
        "left": MutationStreamSimulator(left, seed=seed, churn=churn),
        "right": MutationStreamSimulator(right, seed=seed + 1, churn=churn),
    }
    communities = {"left": left, "right": right}
    maintainer = DeltaJoinMaintainer(
        left.snapshot(), right.snapshot(), epsilon, enforce_size_ratio=False
    )
    pick = np.random.default_rng(seed + 2)
    for step in range(40):
        name = "left" if pick.random() < 0.5 else "right"
        community = communities[name]
        event = next(simulators[name].events(1))
        apply_mutation(community, event)
        if event.action == "like":
            # The maintainer addresses users by snapshot row; the row
            # order is sorted user ids, stable between structural events.
            row = community.user_ids().index(event.user_id)
            side = "first" if name == "left" else "second"
            maintainer.record_like(side, row, event.dimension, event.count)
        else:
            maintainer.rebuild(left.snapshot(), right.snapshot())
        assert_equivalent(
            maintainer,
            left.snapshot(),
            right.snapshot(),
            epsilon,
            context=(step, event),
        )


@given(
    rows_b=st.lists(
        st.lists(st.integers(min_value=0, max_value=6), min_size=3, max_size=3),
        min_size=2,
        max_size=6,
    ),
    rows_a=st.lists(
        st.lists(st.integers(min_value=0, max_value=6), min_size=3, max_size=3),
        min_size=2,
        max_size=6,
    ),
    likes=st.lists(
        st.tuples(
            st.booleans(),  # touch first side?
            st.integers(min_value=0, max_value=5),  # row (clamped)
            st.integers(min_value=0, max_value=2),  # dimension
            st.integers(min_value=1, max_value=4),  # count
        ),
        min_size=1,
        max_size=12,
    ),
    epsilon=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_like_sequences_stay_equivalent(rows_b, rows_a, likes, epsilon):
    """Pure like-streams over arbitrary matrices — no structural events."""
    first_mat = np.array(rows_b, dtype=np.int64)
    second_mat = np.array(rows_a, dtype=np.int64)
    maintainer = DeltaJoinMaintainer(
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        epsilon,
        enforce_size_ratio=False,
    )
    for touch_first, row, dimension, count in likes:
        matrix = first_mat if touch_first else second_mat
        row %= len(matrix)
        matrix[row, dimension] += count
        maintainer.record_like(
            "first" if touch_first else "second", row, dimension, count
        )
        assert_equivalent(
            maintainer,
            Community("first", first_mat.copy()),
            Community("second", second_mat.copy()),
            epsilon,
        )


# ----------------------------------------------------------------------
# core maintainer: unit coverage
# ----------------------------------------------------------------------


class TestMaintainerValidation:
    def setup_method(self):
        self.maintainer = DeltaJoinMaintainer(
            Community("b", np.zeros((3, 2), dtype=np.int64)),
            Community("a", np.ones((4, 2), dtype=np.int64)),
            1,
        )

    def test_rejects_zero_and_negative_counts(self):
        for count in (0, -1, -7):
            with pytest.raises(ValidationError, match="positive"):
                self.maintainer.record_like("first", 0, 0, count)

    def test_rejects_non_integer_count(self):
        with pytest.raises(ValidationError, match="positive"):
            self.maintainer.record_like("first", 0, 0, True)

    def test_rejects_unknown_side(self):
        with pytest.raises(ValidationError, match="side"):
            self.maintainer.record_like("b", 0, 0, 1)

    def test_rejects_out_of_range_row_and_dimension(self):
        with pytest.raises(ValidationError, match="row"):
            self.maintainer.record_like("first", 99, 0, 1)
        with pytest.raises(ValidationError, match="dimension"):
            self.maintainer.record_like("first", 0, 99, 1)

    def test_count_rejection_is_a_value_error(self):
        with pytest.raises(ValueError):
            self.maintainer.record_like("first", 0, 0, 0)


def test_window_gate_skips_far_deltas_without_losing_equivalence():
    """Deltas provably outside the other side's envelope short-circuit."""
    first_mat = np.array([[0, 0], [1, 1]], dtype=np.int64)
    second_mat = np.array([[100, 100], [101, 101]], dtype=np.int64)
    maintainer = DeltaJoinMaintainer(
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        2,
        enforce_size_ratio=False,
    )
    changed = maintainer.record_like("first", 0, 0, 1)
    first_mat[0, 0] += 1
    assert not changed
    assert maintainer.stats.skipped == 1
    assert maintainer.stats.pairs_rechecked == 0
    assert_equivalent(
        maintainer,
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        2,
    )


def test_delta_crossing_into_envelope_repairs_matching():
    """A like that bridges the gap must add edges and grow the matching."""
    first_mat = np.array([[0, 5]], dtype=np.int64)
    second_mat = np.array([[4, 5], [9, 5]], dtype=np.int64)
    maintainer = DeltaJoinMaintainer(
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        1,
        enforce_size_ratio=False,
    )
    assert maintainer.n_matched == 0
    maintainer.record_like("first", 0, 0, 3)  # 0 -> 3: now within 1 of 4
    first_mat[0, 0] += 3
    assert maintainer.n_matched == 1
    assert_equivalent(
        maintainer,
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        1,
    )


def test_result_packages_reference_identical_fields():
    rng = np.random.default_rng(17)
    first = Community("f", rng.integers(0, 6, size=(8, 4), dtype=np.int64))
    second = Community("s", rng.integers(0, 6, size=(9, 4), dtype=np.int64))
    maintainer = DeltaJoinMaintainer(first, second, 2, enforce_size_ratio=False)
    result = maintainer.result()
    full = reference_join(first, second, 2)
    assert result.engine == "delta"
    assert result.exact
    assert result.similarity == full.similarity
    assert result.n_matched == full.n_matched
    assert result.events.as_dict() == full.events.as_dict()
    # Pairs are one maximum matching among possibly many, but they must
    # be a *valid* matching of the same cardinality.
    assert len({pair.b_index for pair in result.pairs}) == len(result.pairs)
    assert len({pair.a_index for pair in result.pairs}) == len(result.pairs)


# ----------------------------------------------------------------------
# store + pool: deterministic 200+-event prefix harness
# ----------------------------------------------------------------------


def test_store_pool_differential_200_event_stream():
    """Every prefix of a seeded 240-event stream is byte-identical.

    The stream mixes likes with membership churn and flows through the
    real serving path: store mutation log -> pool catch-up -> maintainer
    repair (or structural rebuild).  A mirror community replays the same
    events so the expected full join is computed from scratch each step.
    """
    epsilon = 2
    store = CommunityStore()
    pool = DeltaJoinPool(store)
    mirrors = {
        "left": make_incremental("left", 14, seed=3),
        "right": make_incremental("right", 17, seed=4),
    }
    for name, mirror in mirrors.items():
        store.register(name, mirror.snapshot().vectors)
    simulators = {
        name: MutationStreamSimulator(mirror, seed=11, churn=0.08)
        for name, mirror in mirrors.items()
    }
    pick = np.random.default_rng(12)
    delta_modes = 0
    for step in range(240):
        name = "left" if pick.random() < 0.5 else "right"
        mirror = mirrors[name]
        event = next(simulators[name].events(1))
        # Apply to the mirror first: subscribe ids must line up with the
        # store's (both assign sequentially from the same initial state).
        new_id = apply_mutation(mirror, event)
        if event.action == "like":
            if event.user_id in mirror:
                store.record_like(
                    name, event.user_id, event.dimension, event.count
                )
        elif event.action == "subscribe":
            info = store.subscribe(name, list(event.profile))
            assert info["user_id"] == new_id
        else:
            store.unsubscribe(name, event.user_id)
        summary = pool.refresh(
            "left", "right", epsilon, enforce_size_ratio=False
        )
        if summary["mode"] == "delta":
            delta_modes += 1
        full = reference_join(
            mirrors["left"].snapshot(),
            mirrors["right"].snapshot(),
            epsilon,
        )
        context = (step, event, summary["mode"])
        assert summary["similarity"] == full.similarity, context
        assert summary["n_matched"] == full.n_matched, context
        assert summary["events"] == full.events.as_dict(), context
        assert summary["versions"] == {
            "left": mirrors["left"].version,
            "right": mirrors["right"].version,
        }, context
    # The harness only proves equivalence if the delta path actually ran
    # (an all-rebuild run would pass vacuously).
    assert delta_modes > 150


def test_pool_rebuilds_after_log_gap():
    """Falling out of the bounded log window forces a full rebuild."""
    store = CommunityStore()
    rng = np.random.default_rng(21)
    store.register("x", rng.integers(0, 6, size=(6, 3)).tolist())
    store.register("y", rng.integers(0, 6, size=(7, 3)).tolist())
    pool = DeltaJoinPool(store)
    assert pool.refresh("x", "y", 1)["mode"] == "rebuild"
    # Overflow the per-community log so continuity cannot be proven.
    from repro.serve.store import MUTATION_LOG_CAPACITY

    for _ in range(MUTATION_LOG_CAPACITY + 5):
        store.record_like("x", 0, 0, 1)
    summary = pool.refresh("x", "y", 1)
    assert summary["mode"] == "rebuild"
    # Back in the window: the next update repairs locally.
    store.record_like("x", 1, 1, 1)
    assert pool.refresh("x", "y", 1)["mode"] == "delta"


def test_pool_rebuilds_when_community_replaced():
    """replace=True restarts versions; generation fencing must catch it."""
    store = CommunityStore()
    rng = np.random.default_rng(22)
    store.register("x", rng.integers(0, 6, size=(6, 3)).tolist())
    store.register("y", rng.integers(0, 6, size=(7, 3)).tolist())
    pool = DeltaJoinPool(store)
    pool.refresh("x", "y", 1)
    # Replace, then mutate the *new* community back up to a version the
    # pool has already seen — without generations this would alias.
    store.record_like("x", 0, 0, 1)
    pool.refresh("x", "y", 1)
    replacement = rng.integers(0, 6, size=(6, 3))
    store.register("x", replacement.tolist(), replace=True)
    store.record_like("x", 2, 2, 2)
    summary = pool.refresh("x", "y", 1)
    assert summary["mode"] == "rebuild"
    expected = replacement.copy()
    expected[2, 2] += 2
    full = reference_join(
        Community("x", expected), store.snapshot("y").community, 1
    )
    assert summary["similarity"] == full.similarity


def test_mutations_since_contract():
    store = CommunityStore()
    store.register("x", [[0, 0], [1, 1], [2, 2]])
    snap = store.snapshot("x")
    records, current = store.mutations_since("x", snap.version, snap.generation)
    assert records == [] and current == 0
    store.record_like("x", 0, 1, 3)
    store.subscribe("x", [5, 5])
    records, current = store.mutations_since("x", snap.version, snap.generation)
    assert current == 2
    assert [record.action for record in records] == ["record_like", "subscribe"]
    assert records[0].dimension == 1 and records[0].count == 3
    assert records[0].structural is False and records[1].structural is True
    # A stale generation can never replay.
    records, _ = store.mutations_since("x", 0, snap.generation - 1)
    assert records is None


def test_pool_lru_eviction():
    store = CommunityStore()
    rng = np.random.default_rng(23)
    for name in ("a", "b", "c"):
        store.register(name, rng.integers(0, 6, size=(5, 3)).tolist())
    pool = DeltaJoinPool(store, max_couples=1)
    pool.refresh("a", "b", 1)
    pool.refresh("a", "c", 1)  # evicts (a, b)
    assert len(pool) == 1
    assert pool.evictions == 1
    assert pool.refresh("a", "b", 1)["mode"] == "rebuild"


def test_pool_eviction_increments_metric():
    """``repro_delta_evictions_total`` mirrors ``pool.evictions`` —
    regression for the counter being registered but never incremented."""
    from repro.obs import MetricsRegistry
    from repro.serve.store import init_delta_metrics

    registry = MetricsRegistry()
    init_delta_metrics(registry)
    assert registry.counter("repro_delta_evictions_total") == 0

    store = CommunityStore()
    rng = np.random.default_rng(23)
    for name in ("a", "b", "c"):
        store.register(name, rng.integers(0, 6, size=(5, 3)).tolist())
    pool = DeltaJoinPool(store, max_couples=1)
    pool.refresh("a", "b", 1, metrics=registry)
    pool.refresh("a", "c", 1, metrics=registry)  # evicts (a, b)
    assert registry.counter("repro_delta_evictions_total") == pool.evictions == 1


def test_pool_stats_snapshot_is_consistent():
    """``stats()`` reads every counter under the pool lock — regression
    for the torn-read RL008 finding; the snapshot must agree with the
    pool's own fields."""
    store = CommunityStore()
    rng = np.random.default_rng(29)
    for name in ("a", "b", "c"):
        store.register(name, rng.integers(0, 6, size=(5, 3)).tolist())
    pool = DeltaJoinPool(store, max_couples=1)
    pool.refresh("a", "b", 1)
    pool.refresh("a", "c", 1)
    snapshot = pool.stats()
    assert snapshot["couples"] == len(pool)
    assert snapshot["refreshes"] == pool.refreshes
    assert snapshot["rebuilds"] == pool.rebuilds
    assert snapshot["evictions"] == pool.evictions == 1


# ----------------------------------------------------------------------
# serve: update endpoint end-to-end + concurrency
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def couple_vectors():
    rng = np.random.default_rng(31)
    return (
        rng.integers(0, 9, size=(18, 5)).tolist(),
        rng.integers(0, 9, size=(22, 5)).tolist(),
    )


@pytest.mark.serve
@pytest.mark.parametrize("delta", [True, False], ids=["delta", "recompute"])
def test_update_endpoint_matches_reference(couple_vectors, delta):
    vec_one, vec_two = couple_vectors
    config = ServeConfig(delta_maintenance=delta)
    with ServerThread(config) as thread:
        host, port = thread.address
        with ServeClient(host, port) as client:
            client.register("one", vec_one)
            client.register("two", vec_two)
            mirror = np.array(vec_one, dtype=np.int64)
            for step in range(12):
                user = step % len(mirror)
                mirror[user, step % 5] += 1
                response = client.update(
                    "one",
                    "two",
                    epsilon=2,
                    mutation={
                        "name": "one",
                        "action": "record_like",
                        "user_id": user,
                        "dimension": step % 5,
                        "count": 1,
                    },
                )
                expected_mode = (
                    "recompute"
                    if not delta
                    else ("rebuild" if step == 0 else "delta")
                )
                assert response["mode"] == expected_mode
                full = reference_join(
                    Community("one", mirror.copy()),
                    Community("two", np.array(vec_two, dtype=np.int64)),
                    2,
                )
                assert response["similarity"] == full.similarity
                assert response["n_matched"] == full.n_matched
                assert response["events"] == full.events.as_dict()
                assert response["versions"]["one"] == step + 1
                assert response["mutation"]["action"] == "record_like"


@pytest.mark.serve
def test_update_rejects_bad_arguments(couple_vectors):
    vec_one, vec_two = couple_vectors
    with ServerThread(ServeConfig(delta_maintenance=True)) as thread:
        host, port = thread.address
        with ServeClient(host, port) as client:
            client.register("one", vec_one)
            client.register("two", vec_two)
            from repro.serve import ServeError

            with pytest.raises(ServeError, match="distinct"):
                client.update("one", "one", epsilon=1)
            with pytest.raises(ServeError, match="neither"):
                client.update(
                    "one",
                    "two",
                    epsilon=1,
                    mutation={
                        "name": "elsewhere",
                        "action": "record_like",
                        "user_id": 0,
                        "dimension": 0,
                    },
                )
            with pytest.raises(ServeError, match=">= 1"):
                client.update(
                    "one",
                    "two",
                    epsilon=1,
                    mutation={
                        "name": "one",
                        "action": "record_like",
                        "user_id": 0,
                        "dimension": 0,
                        "count": 0,
                    },
                )


@pytest.mark.serve
def test_concurrent_updates_joins_and_topk_see_committed_states():
    """Interleaved update/join/topk never observe a torn mid-delta state.

    Every updater likes the SAME cell by exactly 1, so the store state
    at version ``v`` is fully determined: base + v on that cell.  Each
    response reports the versions it was computed at; its similarity
    must equal the one precomputed for exactly that committed version —
    a torn read (mid-mutation matrix, or matching repaired against a
    different snapshot than reported) cannot satisfy that equality.
    Versions must also be non-decreasing per thread.
    """
    rng = np.random.default_rng(41)
    base_one = rng.integers(0, 7, size=(12, 4), dtype=np.int64)
    base_two = rng.integers(0, 7, size=(14, 4), dtype=np.int64)
    epsilon = 2
    n_updaters, likes_each = 3, 20
    total_likes = n_updaters * likes_each

    # Precompute expected results for every committed version of "one".
    expected_hk: dict[int, float] = {}
    expected_minmax: dict[int, float] = {}
    scratch = base_one.copy()
    for version in range(total_likes + 1):
        community = Community("one", scratch.copy())
        other = Community("two", base_two.copy())
        expected_hk[version] = reference_join(community, other, epsilon).similarity
        from repro import csj_similarity

        expected_minmax[version] = csj_similarity(
            community, other, epsilon=epsilon, method="ex-minmax"
        ).similarity
        scratch[0, 0] += 1

    failures: list[str] = []
    config = ServeConfig(delta_maintenance=True)
    with ServerThread(config) as thread:
        host, port = thread.address
        with ServeClient(host, port) as setup:
            setup.register("one", base_one.tolist())
            setup.register("two", base_two.tolist())

        def updater() -> None:
            try:
                with ServeClient(host, port) as client:
                    last_version = -1
                    for _ in range(likes_each):
                        response = client.update(
                            "one",
                            "two",
                            epsilon=epsilon,
                            mutation={
                                "name": "one",
                                "action": "record_like",
                                "user_id": 0,
                                "dimension": 0,
                                "count": 1,
                            },
                        )
                        version = response["versions"]["one"]
                        if version < last_version:
                            failures.append(
                                f"update version regressed: {version} < {last_version}"
                            )
                        last_version = version
                        if response["similarity"] != expected_hk[version]:
                            failures.append(
                                f"update@v{version}: torn similarity "
                                f"{response['similarity']!r}"
                            )
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"updater crashed: {exc!r}")

        def join_reader() -> None:
            try:
                with ServeClient(host, port) as client:
                    last_version = -1
                    for _ in range(likes_each):
                        response = client.join(
                            "one",
                            "two",
                            epsilon=epsilon,
                            method="ex-baseline",
                            options={"matcher": "hopcroft_karp"},
                        )
                        version = response["first"]["version"]
                        if version < last_version:
                            failures.append(
                                f"join version regressed: {version} < {last_version}"
                            )
                        last_version = version
                        similarity = response["result"]["similarity"]
                        if similarity != expected_hk[version]:
                            failures.append(
                                f"join@v{version}: torn similarity {similarity!r}"
                            )
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"join reader crashed: {exc!r}")

        def topk_reader() -> None:
            try:
                with ServeClient(host, port) as client:
                    last_version = -1
                    for _ in range(10):
                        response = client.topk(
                            epsilon=epsilon, k=1, names=["one", "two"]
                        )
                        version = response["versions"]["one"]
                        if version < last_version:
                            failures.append(
                                f"topk version regressed: {version} < {last_version}"
                            )
                        last_version = version
                        similarity = response["ranking"][0]["similarity"]
                        if similarity != expected_minmax[version]:
                            failures.append(
                                f"topk@v{version}: torn similarity {similarity!r}"
                            )
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"topk reader crashed: {exc!r}")

        threads = (
            [threading.Thread(target=updater) for _ in range(n_updaters)]
            + [threading.Thread(target=join_reader) for _ in range(2)]
            + [threading.Thread(target=topk_reader)]
        )
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=120)
        with ServeClient(host, port) as client:
            final = client.update("one", "two", epsilon=epsilon)
            assert final["versions"]["one"] == total_likes
            assert final["similarity"] == expected_hk[total_likes]
    assert not failures, "\n".join(failures[:20])
