"""Unit tests for the event machinery (repro.core.events)."""

from __future__ import annotations

import pytest

from repro.algorithms.baseline import ApBaseline, ExBaseline
from repro.core.events import EventTrace, EventType, TraceEvent
from repro.core.types import Community


class TestEventType:
    def test_paper_names(self):
        assert EventType.MIN_PRUNE.value == "MIN PRUNE"
        assert EventType.MAX_PRUNE.value == "MAX PRUNE"
        assert EventType.NO_OVERLAP.value == "NO OVERLAP"
        assert EventType.NO_MATCH.value == "NO MATCH"
        assert EventType.MATCH.value == "MATCH"


class TestTraceEvent:
    def test_match_format_uses_in_connector(self):
        event = TraceEvent(EventType.MATCH, "b2:48", "a3:(42, 72)")
        assert event.format() == "* b2:48 IN a3:(42, 72) => MATCH"

    def test_min_prune_uses_less_than(self):
        event = TraceEvent(EventType.MIN_PRUNE, "b1:40", "a3:(42, 72)")
        assert event.format() == "* b1:40 < a3:(42, 72) => MIN PRUNE"

    def test_max_prune_uses_greater_than(self):
        event = TraceEvent(EventType.MAX_PRUNE, "b3:67", "a1:(30, 55)")
        assert event.format() == "* b3:67 > a1:(30, 55) => MAX PRUNE"

    def test_detail_appended(self):
        event = TraceEvent(EventType.MATCH, "b1:40", "a1:(30, 55)", "maxV = 55")
        assert event.format().endswith("=> MATCH (maxV = 55)")

    def test_single_label(self):
        event = TraceEvent(EventType.MATCH, b_label="b1")
        assert event.format() == "* b1 => MATCH"


class TestEventTrace:
    def test_counts_without_recording(self):
        trace = EventTrace(record=False)
        trace.emit(EventType.MATCH)
        trace.emit(EventType.NO_MATCH)
        trace.emit(EventType.NO_MATCH)
        assert trace.counts.match == 1
        assert trace.counts.no_match == 2
        assert trace.events == []

    def test_recording_stores_events(self):
        trace = EventTrace(record=True)
        trace.emit(EventType.MIN_PRUNE, "b1", "a1")
        assert len(trace.events) == 1
        assert trace.events[0].kind is EventType.MIN_PRUNE

    def test_emit_bulk(self):
        trace = EventTrace()
        trace.emit_bulk(EventType.NO_OVERLAP, 7)
        assert trace.counts.no_overlap == 7

    def test_emit_bulk_ignores_non_positive(self):
        trace = EventTrace()
        trace.emit_bulk(EventType.MATCH, 0)
        trace.emit_bulk(EventType.MATCH, -3)
        assert trace.counts.match == 0

    def test_notes_only_when_recording(self):
        silent = EventTrace(record=False)
        silent.note("CSF(...)")
        assert silent.notes == []
        recording = EventTrace(record=True)
        recording.note("CSF(<b1, a1>)")
        assert recording.notes == ["CSF(<b1, a1>)"]

    def test_format_includes_events_and_notes(self):
        trace = EventTrace(record=True)
        trace.emit(EventType.MATCH, "b1:10", "a1:(5, 15)")
        trace.note("CSF(<b1, a1>)")
        formatted = trace.format()
        assert "=> MATCH" in formatted
        assert "CSF(<b1, a1>)" in formatted

    def test_all_event_kinds_counted(self):
        trace = EventTrace()
        for kind in EventType:
            trace.emit(kind)
        assert trace.counts.total == len(EventType)


class TestBaselineEngineParity:
    """Python and numpy baseline engines must report identical totals.

    The python engines emit one event per scanned pair; the numpy
    engines account the same pairs in bulk.  Totals (not just MATCH but
    also NO_MATCH) must agree so event reports are engine-independent.
    """

    @pytest.mark.parametrize("algorithm_cls", [ApBaseline, ExBaseline])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_event_totals_match(self, algorithm_cls, seed):
        from repro.testing import random_counter_couple

        vectors_b, vectors_a = random_counter_couple(
            seed, n_b=14, n_a=20, n_dims=5, high=6
        )
        community_b = Community("B", vectors_b)
        community_a = Community("A", vectors_a)
        python = algorithm_cls(1, engine="python").join(community_b, community_a)
        vectorised = algorithm_cls(1, engine="numpy").join(community_b, community_a)
        assert python.pair_tuples() == vectorised.pair_tuples()
        assert python.events.as_dict() == vectorised.events.as_dict()
        assert python.events.comparisons == vectorised.events.comparisons

    @pytest.mark.parametrize("algorithm_cls", [ApBaseline, ExBaseline])
    def test_parity_when_nothing_matches(self, algorithm_cls):
        community_b = Community("B", [[0, 0]] * 4)
        community_a = Community("A", [[90, 90]] * 5)
        python = algorithm_cls(1, engine="python").join(community_b, community_a)
        vectorised = algorithm_cls(1, engine="numpy").join(community_b, community_a)
        assert python.events.as_dict() == vectorised.events.as_dict()
        assert vectorised.events.no_match == 20
        assert vectorised.events.match == 0
