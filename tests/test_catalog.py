"""Tests for the community catalog (repro.datasets.catalog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.types import Community
from repro.datasets.catalog import CommunityCatalog


def make_community(name: str, seed: int, n: int = 20) -> Community:
    rng = np.random.default_rng(seed)
    return Community(name, rng.integers(0, 20, size=(n, 4)), "Sport")


@pytest.fixture
def catalog(tmp_path) -> CommunityCatalog:
    return CommunityCatalog(tmp_path / "catalog")


class TestRegistry:
    def test_register_and_get(self, catalog):
        community = make_community("Nike", 1)
        catalog.register("nike", community)
        loaded = catalog.get("nike")
        assert loaded.name == "Nike"
        assert np.array_equal(loaded.vectors, community.vectors)

    def test_keys_sorted(self, catalog):
        catalog.register("b", make_community("B", 1))
        catalog.register("a", make_community("A", 2))
        assert catalog.keys() == ["a", "b"]

    def test_get_unknown(self, catalog):
        with pytest.raises(ValidationError, match="registered"):
            catalog.get("ghost")

    def test_remove(self, catalog):
        catalog.register("x", make_community("X", 3))
        catalog.remove("x")
        assert catalog.keys() == []
        with pytest.raises(ValidationError):
            catalog.remove("x")

    def test_invalid_key(self, catalog):
        with pytest.raises(ValidationError, match="invalid catalog key"):
            catalog.register("../escape", make_community("X", 4))

    def test_replace_overwrites(self, catalog):
        catalog.register("k", make_community("Old", 5))
        catalog.register("k", make_community("New", 6))
        assert catalog.get("k").name == "New"


class TestSimilarityCache:
    def test_first_call_computes_second_hits_cache(self, catalog):
        base = make_community("Base", 7)
        twin = Community("Twin", base.vectors, "Sport")
        catalog.register("base", base)
        catalog.register("twin", twin)
        first = catalog.similarity("base", "twin", epsilon=1)
        second = catalog.similarity("base", "twin", epsilon=1)
        assert not first.from_cache
        assert second.from_cache
        assert second.similarity == first.similarity == pytest.approx(1.0)

    def test_cache_persists_across_instances(self, tmp_path):
        catalog = CommunityCatalog(tmp_path / "c")
        catalog.register("a", make_community("A", 8))
        catalog.register("b", make_community("B", 8))
        catalog.similarity("a", "b", epsilon=1)
        reopened = CommunityCatalog(tmp_path / "c")
        assert reopened.cache_size() == 1
        assert reopened.similarity("a", "b", epsilon=1).from_cache

    def test_reregistration_invalidates(self, catalog):
        catalog.register("a", make_community("A", 9))
        catalog.register("b", make_community("B", 9))
        catalog.similarity("a", "b", epsilon=1)
        catalog.register("a", make_community("A", 10))
        refreshed = catalog.similarity("a", "b", epsilon=1)
        assert not refreshed.from_cache

    def test_distinct_parameters_distinct_entries(self, catalog):
        catalog.register("a", make_community("A", 11))
        catalog.register("b", make_community("B", 11))
        catalog.similarity("a", "b", epsilon=1)
        catalog.similarity("a", "b", epsilon=2)
        catalog.similarity("a", "b", epsilon=1, method="ap-minmax")
        assert catalog.cache_size() == 3

    def test_clear_cache(self, catalog):
        catalog.register("a", make_community("A", 12))
        catalog.register("b", make_community("B", 12))
        catalog.similarity("a", "b", epsilon=1)
        catalog.clear_cache()
        assert catalog.cache_size() == 0
        assert not catalog.similarity("a", "b", epsilon=1).from_cache
