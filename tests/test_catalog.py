"""Tests for the community catalog (repro.datasets.catalog)."""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.types import Community
from repro.datasets.catalog import CommunityCatalog, _fingerprint


def make_community(name: str, seed: int, n: int = 20) -> Community:
    rng = np.random.default_rng(seed)
    return Community(name, rng.integers(0, 20, size=(n, 4)), "Sport")


@pytest.fixture
def catalog(tmp_path) -> CommunityCatalog:
    return CommunityCatalog(tmp_path / "catalog")


class TestRegistry:
    def test_register_and_get(self, catalog):
        community = make_community("Nike", 1)
        catalog.register("nike", community)
        loaded = catalog.get("nike")
        assert loaded.name == "Nike"
        assert np.array_equal(loaded.vectors, community.vectors)

    def test_keys_sorted(self, catalog):
        catalog.register("b", make_community("B", 1))
        catalog.register("a", make_community("A", 2))
        assert catalog.keys() == ["a", "b"]

    def test_get_unknown(self, catalog):
        with pytest.raises(ValidationError, match="registered"):
            catalog.get("ghost")

    def test_remove(self, catalog):
        catalog.register("x", make_community("X", 3))
        catalog.remove("x")
        assert catalog.keys() == []
        with pytest.raises(ValidationError):
            catalog.remove("x")

    def test_invalid_key(self, catalog):
        with pytest.raises(ValidationError, match="invalid catalog key"):
            catalog.register("../escape", make_community("X", 4))

    def test_replace_overwrites(self, catalog):
        catalog.register("k", make_community("Old", 5))
        catalog.register("k", make_community("New", 6))
        assert catalog.get("k").name == "New"


class TestSimilarityCache:
    def test_first_call_computes_second_hits_cache(self, catalog):
        base = make_community("Base", 7)
        twin = Community("Twin", base.vectors, "Sport")
        catalog.register("base", base)
        catalog.register("twin", twin)
        first = catalog.similarity("base", "twin", epsilon=1)
        second = catalog.similarity("base", "twin", epsilon=1)
        assert not first.from_cache
        assert second.from_cache
        assert second.similarity == first.similarity == pytest.approx(1.0)

    def test_cache_persists_across_instances(self, tmp_path):
        catalog = CommunityCatalog(tmp_path / "c")
        catalog.register("a", make_community("A", 8))
        catalog.register("b", make_community("B", 8))
        catalog.similarity("a", "b", epsilon=1)
        reopened = CommunityCatalog(tmp_path / "c")
        assert reopened.cache_size() == 1
        assert reopened.similarity("a", "b", epsilon=1).from_cache

    def test_reregistration_invalidates(self, catalog):
        catalog.register("a", make_community("A", 9))
        catalog.register("b", make_community("B", 9))
        catalog.similarity("a", "b", epsilon=1)
        catalog.register("a", make_community("A", 10))
        refreshed = catalog.similarity("a", "b", epsilon=1)
        assert not refreshed.from_cache

    def test_distinct_parameters_distinct_entries(self, catalog):
        catalog.register("a", make_community("A", 11))
        catalog.register("b", make_community("B", 11))
        catalog.similarity("a", "b", epsilon=1)
        catalog.similarity("a", "b", epsilon=2)
        catalog.similarity("a", "b", epsilon=1, method="ap-minmax")
        assert catalog.cache_size() == 3

    def test_clear_cache(self, catalog):
        catalog.register("a", make_community("A", 12))
        catalog.register("b", make_community("B", 12))
        catalog.similarity("a", "b", epsilon=1)
        catalog.clear_cache()
        assert catalog.cache_size() == 0
        assert not catalog.similarity("a", "b", epsilon=1).from_cache


class TestFingerprintDtype:
    def test_same_bytes_different_dtype_differ(self):
        # 4607182418800017408 is the int64 whose bit pattern equals the
        # IEEE-754 encoding of float64 1.0 — byte-identical buffers.
        as_int = np.array([[4607182418800017408]], dtype=np.int64)
        as_float = np.array([[1.0]], dtype=np.float64)
        assert as_int.tobytes() == as_float.tobytes()
        print_int = _fingerprint(SimpleNamespace(vectors=as_int))
        print_float = _fingerprint(SimpleNamespace(vectors=as_float))
        assert print_int != print_float

    def test_same_bytes_different_shape_differ(self):
        flat = np.arange(6, dtype=np.int64).reshape(1, 6)
        tall = np.arange(6, dtype=np.int64).reshape(6, 1)
        assert flat.tobytes() == tall.tobytes()
        assert _fingerprint(SimpleNamespace(vectors=flat)) != _fingerprint(
            SimpleNamespace(vectors=tall)
        )

    def test_stable_for_equal_content(self):
        one = make_community("X", 50)
        two = Community("Y", one.vectors.copy(), "Media")
        assert _fingerprint(one) == _fingerprint(two)


class TestCacheKeyInjection:
    def test_pipe_in_key_rejected_at_registration(self, catalog):
        with pytest.raises(ValidationError, match="invalid catalog key"):
            catalog.register("a|b", make_community("X", 51))

    def test_pipe_in_cache_key_component_rejected(self, catalog):
        # Keys are pipe-free by registration, but the delimiter check
        # guards every component (method names, fingerprints) too.
        with pytest.raises(ValidationError, match="reserved delimiter"):
            catalog._cache_key("a", "b", "ex|minmax", 1, "p1", "p2")

    def test_forged_pair_cannot_collide(self, catalog):
        # Without the guard, ("x", "y|z") and ("x|y", "z") could join to
        # the same cache key; with it neither composite key can exist.
        for key in ("y|z", "x|y"):
            with pytest.raises(ValidationError):
                catalog.register(key, make_community("X", 52))


class TestRemovePurgesCache:
    def test_remove_drops_cache_entries(self, catalog):
        catalog.register("a", make_community("A", 53))
        catalog.register("b", make_community("B", 53))
        catalog.register("c", make_community("C", 53))
        catalog.similarity("a", "b", epsilon=1)
        catalog.similarity("b", "c", epsilon=1)
        catalog.remove("a")
        assert catalog.cache_size() == 1  # (b, c) survives
        reopened = CommunityCatalog(catalog.root)
        assert reopened.cache_size() == 1
        assert reopened.similarity("b", "c", epsilon=1).from_cache

    def test_removed_then_reregistered_key_recomputes(self, catalog):
        catalog.register("a", make_community("A", 54))
        catalog.register("b", make_community("B", 54))
        catalog.similarity("a", "b", epsilon=1)
        catalog.remove("a")
        catalog.register("a", make_community("A2", 55))
        assert not catalog.similarity("a", "b", epsilon=1).from_cache


class TestCacheFileRobustness:
    def test_torn_cache_degrades_with_warning(self, tmp_path):
        root = tmp_path / "torn"
        catalog = CommunityCatalog(root)
        catalog.register("a", make_community("A", 56))
        catalog.register("b", make_community("B", 56))
        catalog.similarity("a", "b", epsilon=1)
        # Simulate a torn write: truncate the file mid-JSON.
        cache_path = root / "similarity_cache.json"
        cache_path.write_text(cache_path.read_text()[: 10])
        with pytest.warns(RuntimeWarning, match="undecodable similarity cache"):
            reopened = CommunityCatalog(root)
        assert reopened.cache_size() == 0
        assert not reopened.similarity("a", "b", epsilon=1).from_cache

    def test_foreign_json_shape_degrades(self, tmp_path):
        root = tmp_path / "foreign"
        root.mkdir()
        (root / "similarity_cache.json").write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning):
            catalog = CommunityCatalog(root)
        assert catalog.cache_size() == 0

    def test_save_is_atomic_under_crash(self, tmp_path, monkeypatch):
        root = tmp_path / "atomic"
        catalog = CommunityCatalog(root)
        catalog.register("a", make_community("A", 57))
        catalog.register("b", make_community("B", 57))
        catalog.register("c", make_community("C", 57))
        catalog.similarity("a", "b", epsilon=1)
        cache_path = root / "similarity_cache.json"
        before = cache_path.read_text()

        def crash(*_args: object, **_kwargs: object) -> None:
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            catalog.similarity("b", "c", epsilon=1)
        monkeypatch.undo()
        # The visible cache file is bitwise untouched — old content,
        # never a torn half-write — and still valid JSON.
        assert cache_path.read_text() == before
        assert isinstance(json.loads(cache_path.read_text()), dict)
        reopened = CommunityCatalog(root)
        assert reopened.cache_size() == 1

    def test_no_tmp_file_left_behind(self, catalog):
        catalog.register("a", make_community("A", 58))
        catalog.register("b", make_community("B", 58))
        catalog.similarity("a", "b", epsilon=1)
        assert not list(catalog.root.glob("*.tmp"))
