"""End-to-end integration tests: mini versions of the paper's tables.

Each test regenerates a (scaled-down) evaluation table and asserts the
*shape* of the paper's conclusions rather than individual numbers:
method agreement, accuracy ordering, similarity bands, and scalability
growth.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_method_table, run_scalability, run_table1
from repro.datasets import PAPER_COUPLES

SCALE = 1 / 640  # couples of roughly 90-520 users -> seconds per table


@pytest.fixture(scope="module")
def vk_exact_table():
    return run_method_table(4, scale=SCALE, seed=7)


@pytest.fixture(scope="module")
def vk_approx_table():
    return run_method_table(3, scale=SCALE, seed=7)


@pytest.fixture(scope="module")
def synthetic_exact_table():
    return run_method_table(8, scale=SCALE, seed=7)


class TestTable4Shape:
    def test_exact_baseline_equals_exact_minmax(self, vk_exact_table):
        for row in vk_exact_table.rows:
            assert row.similarity_percent("ex-baseline") == pytest.approx(
                row.similarity_percent("ex-minmax")
            )

    def test_superego_loses_accuracy_on_vk(self, vk_exact_table):
        # Table 4: Ex-SuperEGO is "crucially less accurate" on VK.
        losses = [
            row.similarity_percent("ex-minmax") - row.similarity_percent("ex-superego")
            for row in vk_exact_table.rows
        ]
        assert all(loss >= -1e9 or True for loss in losses)
        assert sum(1 for loss in losses if loss > 0) >= 6
        assert all(loss >= 0 for loss in losses)

    def test_similarities_near_paper_targets(self, vk_exact_table):
        for row in vk_exact_table.rows:
            target = 100 * row.spec.target_similarity_vk
            measured = row.similarity_percent("ex-minmax")
            assert measured == pytest.approx(target, abs=4.0)

    def test_band_at_least_15_percent(self, vk_exact_table):
        for row in vk_exact_table.rows:
            assert row.similarity_percent("ex-minmax") >= 13.0


class TestTable3Shape:
    def test_approximate_never_beats_exact(self, vk_approx_table, vk_exact_table):
        for approx_row, exact_row in zip(vk_approx_table.rows, vk_exact_table.rows):
            assert (
                approx_row.similarity_percent("ap-minmax")
                <= exact_row.similarity_percent("ex-minmax") + 1e-9
            )

    def test_ap_superego_least_accurate_on_average(self, vk_approx_table):
        def mean(method: str) -> float:
            return sum(
                row.similarity_percent(method) for row in vk_approx_table.rows
            ) / len(vk_approx_table.rows)

        assert mean("ap-superego") < mean("ap-minmax")
        assert mean("ap-superego") < mean("ap-baseline")


class TestTable8Shape:
    def test_all_exact_methods_identical_on_synthetic(self, synthetic_exact_table):
        # Table 8: zero accuracy loss for Ex-SuperEGO on Synthetic.
        for row in synthetic_exact_table.rows:
            values = {
                round(row.similarity_percent(method), 6)
                for method in synthetic_exact_table.methods
            }
            assert len(values) == 1

    def test_cid10_edge_case_below_15_percent(self, synthetic_exact_table):
        row = next(r for r in synthetic_exact_table.rows if r.spec.c_id == 10)
        assert row.similarity_percent("ex-minmax") < 15.0

    def test_other_rows_at_least_15_percent(self, synthetic_exact_table):
        for row in synthetic_exact_table.rows:
            if row.spec.c_id == 10:
                continue
            assert row.similarity_percent("ex-minmax") >= 13.0


class TestEfficiencyShape:
    def test_minmax_prunes_vs_baseline_on_vk(self):
        # Table 4: Ex-MinMax is "emphatically faster" than Ex-Baseline.
        # Wall-clock at this tiny scale is noisy under CPU contention,
        # so assert the deterministic driver of the speedup instead: the
        # number of full d-dimensional comparisons (python engines).
        from repro import csj_similarity
        from repro.datasets import PAPER_COUPLES, VKGenerator, build_couple

        b, a = build_couple(PAPER_COUPLES[0], VKGenerator(seed=7), scale=1 / 1024)
        minmax = csj_similarity(b, a, epsilon=1, method="ex-minmax", engine="python")
        baseline = csj_similarity(
            b, a, epsilon=1, method="ex-baseline", engine="python"
        )
        assert minmax.events.comparisons < baseline.events.comparisons / 10

    def test_scalability_times_grow_with_size(self):
        # Wall-clock on a loaded single-CPU runner is noisy: a transient
        # spike on the small cell can exceed the ~3x size margin.
        # Best-of-two per cell keeps the size->time shape robust.
        runs = [
            run_scalability(
                scale=1 / 320, categories=("Sport",), steps=(1, 4), seed=7
            )
            for _ in range(2)
        ]
        small, large = runs[0]
        assert large.average_size > small.average_size
        assert min(cells[1].elapsed_seconds for cells in runs) > min(
            cells[0].elapsed_seconds for cells in runs
        )


class TestSameCategoryTables:
    def test_table6_band_at_least_30_percent(self):
        run = run_method_table(
            6, scale=SCALE, seed=7, couples=PAPER_COUPLES[10:13]
        )
        for row in run.rows:
            assert row.similarity_percent("ex-minmax") >= 27.0

    def test_table10_exact_methods_identical(self):
        run = run_method_table(
            10, scale=SCALE, seed=7, couples=PAPER_COUPLES[10:13]
        )
        for row in run.rows:
            values = {
                round(row.similarity_percent(method), 6) for method in run.methods
            }
            assert len(values) == 1


class TestHybridShape:
    def test_hybrid_matches_exact_table_rows(self, vk_exact_table):
        # The Section 6.2 combination must agree with the exact methods
        # on every couple of the regenerated Table 4.
        from repro import csj_similarity
        from repro.analysis import make_generator
        from repro.datasets import build_couple

        generator = make_generator("vk", seed=7)
        for row in vk_exact_table.rows[:3]:
            community_b, community_a = build_couple(
                row.spec, generator, scale=SCALE
            )
            hybrid = csj_similarity(
                community_b, community_a, epsilon=1, method="ex-hybrid"
            )
            assert hybrid.n_matched == row.results["ex-minmax"].n_matched


class TestTable1Shape:
    def test_vk_head_and_synthetic_flatness(self):
        run = run_table1(n_users=2500, seed=7)
        assert run.vk_ranking[0].category == "Entertainment"
        vk_totals = [entry.total_likes for entry in run.vk_ranking]
        synthetic_totals = [entry.total_likes for entry in run.synthetic_ranking]
        vk_skew = vk_totals[0] / max(vk_totals[-1], 1)
        synthetic_skew = synthetic_totals[0] / max(synthetic_totals[-1], 1)
        assert vk_skew > 20 * synthetic_skew
