"""Tests for dataset persistence (repro.datasets.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.types import Community
from repro.datasets.io import (
    load_communities,
    load_couple,
    save_communities,
    save_couple,
)


@pytest.fixture
def sample_couple() -> tuple[Community, Community]:
    rng = np.random.default_rng(0)
    b = Community("Nike", rng.integers(0, 9, size=(12, 5)), "Sport", page_id=1)
    a = Community("Adidas", rng.integers(0, 9, size=(15, 5)), "Sport", page_id=2)
    return b, a


class TestRoundTrip:
    def test_couple_round_trip(self, tmp_path, sample_couple):
        b, a = sample_couple
        path = save_couple(tmp_path / "couple", b, a)
        assert path.exists()
        loaded_b, loaded_a = load_couple(tmp_path / "couple")
        assert loaded_b.name == "Nike"
        assert loaded_a.page_id == 2
        assert np.array_equal(loaded_b.vectors, b.vectors)
        assert np.array_equal(loaded_a.vectors, a.vectors)

    def test_keyed_set_round_trip(self, tmp_path, sample_couple):
        b, a = sample_couple
        save_communities(tmp_path / "many", {"x": b, "y": a, "z": b})
        loaded = load_communities(tmp_path / "many")
        assert set(loaded) == {"x", "y", "z"}
        assert loaded["z"].category == "Sport"

    def test_suffix_normalisation(self, tmp_path, sample_couple):
        b, a = sample_couple
        save_couple(tmp_path / "archive.npz", b, a)
        loaded_b, _ = load_couple(tmp_path / "archive")
        assert loaded_b.n_users == b.n_users

    def test_join_results_survive_round_trip(self, tmp_path, sample_couple):
        from repro import csj_similarity

        b, a = sample_couple
        before = csj_similarity(b, a, epsilon=1, method="ex-minmax")
        save_couple(tmp_path / "c", b, a)
        loaded_b, loaded_a = load_couple(tmp_path / "c")
        after = csj_similarity(loaded_b, loaded_a, epsilon=1, method="ex-minmax")
        assert before.n_matched == after.n_matched


class TestErrors:
    def test_missing_archive(self, tmp_path):
        with pytest.raises(ValidationError, match="no such dataset"):
            load_communities(tmp_path / "nope")

    def test_missing_metadata(self, tmp_path, sample_couple):
        b, a = sample_couple
        path = save_couple(tmp_path / "c", b, a)
        (tmp_path / "c.meta.json").unlink()
        with pytest.raises(ValidationError, match="metadata"):
            load_communities(path)

    def test_not_a_couple(self, tmp_path, sample_couple):
        b, _ = sample_couple
        save_communities(tmp_path / "single", {"only": b})
        with pytest.raises(ValidationError, match="couple"):
            load_couple(tmp_path / "single")
