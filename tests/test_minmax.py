"""Tests for Ap-MinMax and Ex-MinMax (repro.algorithms.minmax)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.baseline import ApBaseline, ExBaseline
from repro.algorithms.minmax import ApMinMax, ExMinMax
from repro.core.events import EventType
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)


class TestApMinMax:
    @pytest.mark.parametrize("seed", range(8))
    def test_engines_agree(self, seed):
        vectors_b, vectors_a = random_couple(seed)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        python = ApMinMax(1, engine="python").join(b, a)
        numpy_ = ApMinMax(1, engine="numpy").join(b, a)
        assert python.pair_tuples() == numpy_.pair_tuples()

    @pytest.mark.parametrize("n_parts", [1, 2, 3, 4])
    def test_matching_valid_for_any_parts(self, small_couple, n_parts):
        b, a = small_couple
        result = ApMinMax(1, n_parts=n_parts).join(b, a)
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_same_match_count_class_as_ap_baseline(self, seed):
        # Both are first-fit greedy; scan orders differ (sorted vs raw),
        # so counts may differ slightly but stay within the candidate
        # graph's maximum.
        vectors_b, vectors_a = random_couple(seed + 10)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        minmax = ApMinMax(1).join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, 1)
        )
        assert minmax.n_matched <= oracle

    def test_python_engine_emits_all_event_kinds(self):
        # Construct data guaranteed to produce every event type.
        vectors_b = np.array([[0, 0], [3, 3], [6, 6], [40, 0]])
        vectors_a = np.array([[0, 0], [3, 4], [20, 20], [0, 40]])
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        algorithm = ApMinMax(1, n_parts=2, engine="python", record_trace=True)
        result = algorithm.join(b, a)
        counts = result.events
        assert counts.match >= 1
        assert counts.min_prune >= 1
        assert counts.no_overlap >= 1

    def test_trace_recording(self, small_couple):
        b, a = small_couple
        algorithm = ApMinMax(1, engine="python", record_trace=True)
        algorithm.join(b, a)
        trace = algorithm.last_trace
        assert trace is not None
        assert len(trace.events) == trace.counts.total
        assert trace.format()

    def test_numpy_engine_has_no_trace_events(self, small_couple):
        b, a = small_couple
        algorithm = ApMinMax(1, engine="numpy", record_trace=True)
        algorithm.join(b, a)
        assert algorithm.last_trace.events == []


class TestExMinMax:
    @pytest.mark.parametrize("seed", range(8))
    def test_engines_agree(self, seed):
        vectors_b, vectors_a = random_couple(seed + 30)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        python = ExMinMax(1, engine="python").join(b, a)
        numpy_ = ExMinMax(1, engine="numpy").join(b, a)
        assert set(python.pair_tuples()) == set(numpy_.pair_tuples())

    @pytest.mark.parametrize("seed", range(10))
    def test_segmented_csf_equals_global_csf(self, seed):
        # Ex-MinMax flushes CSF per maxV segment; segments are unions of
        # connected components, so the result must equal Ex-Baseline's
        # single global CSF call.
        vectors_b, vectors_a = random_couple(seed + 60)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        minmax = ExMinMax(1, engine="python").join(b, a)
        baseline = ExBaseline(1, engine="python").join(b, a)
        assert set(minmax.pair_tuples()) == set(baseline.pair_tuples())

    @pytest.mark.parametrize("seed", range(6))
    def test_hopcroft_karp_reaches_maximum(self, seed):
        vectors_b, vectors_a = random_couple(seed + 90)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExMinMax(1, matcher="hopcroft_karp").join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, 1)
        )
        assert result.n_matched == oracle

    @pytest.mark.parametrize("n_parts", [1, 2, 4])
    @pytest.mark.parametrize("epsilon", [0, 1, 2])
    def test_parts_and_epsilon_grid(self, epsilon, n_parts):
        vectors_b, vectors_a = random_couple(7, d=8)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExMinMax(epsilon, n_parts=n_parts, matcher="hopcroft_karp").join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, epsilon)
        )
        assert result.n_matched == oracle
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, epsilon)

    def test_dominates_approximate(self, small_couple):
        b, a = small_couple
        exact = ExMinMax(1, matcher="hopcroft_karp").join(b, a)
        approx = ApMinMax(1).join(b, a)
        assert exact.n_matched >= approx.n_matched

    def test_csf_trace_notes_record_segments(self):
        vectors_b = np.array([[0, 0], [1, 1], [50, 50], [51, 51]])
        vectors_a = np.array([[0, 1], [1, 0], [50, 51], [51, 50]])
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        algorithm = ExMinMax(1, n_parts=2, engine="python", record_trace=True)
        algorithm.join(b, a)
        notes = algorithm.last_trace.notes
        # Two well-separated groups -> at least two CSF flushes.
        assert len(notes) >= 2
        assert all(note.startswith("CSF(") for note in notes)

    def test_match_events_carry_maxv_detail(self):
        vectors_b = np.array([[2, 2]])
        vectors_a = np.array([[2, 3]])
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        algorithm = ExMinMax(1, n_parts=2, engine="python", record_trace=True)
        algorithm.join(b, a)
        match_events = [
            event
            for event in algorithm.last_trace.events
            if event.kind is EventType.MATCH
        ]
        assert match_events
        assert match_events[0].detail.startswith("maxV = ")

    def test_exact_flag_and_name(self):
        assert ExMinMax(1).exact is True
        assert ExMinMax(1).name == "ex-minmax"
        assert ApMinMax(1).name == "ap-minmax"


class TestMinMaxPruningEffectiveness:
    def test_minmax_compares_less_than_baseline(self):
        # The encoding must cut the number of full d-dimensional
        # comparisons versus the exhaustive nested loop.
        rng = np.random.default_rng(4)
        vectors_b = rng.integers(0, 60, size=(60, 9))
        vectors_a = rng.integers(0, 60, size=(70, 9))
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        minmax = ApMinMax(1, engine="python").join(b, a)
        baseline = ApBaseline(1, engine="python").join(b, a)
        assert minmax.events.comparisons < baseline.events.comparisons

    def test_no_overlap_filter_actually_fires(self):
        rng = np.random.default_rng(14)
        vectors_b = rng.integers(0, 40, size=(40, 8))
        vectors_a = rng.integers(0, 40, size=(40, 8))
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ApMinMax(1, engine="python").join(b, a)
        assert result.events.no_overlap > 0
