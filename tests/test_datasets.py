"""Tests for the dataset substrates (categories, generators, clusters,
stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.datasets import (
    CATEGORIES,
    N_CATEGORIES,
    SYNTHETIC_EPSILON,
    SYNTHETIC_RANKING,
    SYNTHETIC_TOTAL_LIKES,
    VK_EPSILON,
    VK_TOTAL_LIKES,
    SyntheticGenerator,
    VKGenerator,
    category_index,
    category_totals,
    max_likes_per_dimension,
    ranking,
)
from repro.datasets.clusters import build_couple_vectors


class TestCategories:
    def test_twenty_seven_categories(self):
        assert N_CATEGORIES == 27
        assert len(CATEGORIES) == 27
        assert len(set(CATEGORIES)) == 27

    def test_vk_totals_are_rank_ordered(self):
        totals = list(VK_TOTAL_LIKES.values())
        assert totals == sorted(totals, reverse=True)

    def test_entertainment_is_rank_one(self):
        assert CATEGORIES[0] == "Entertainment"
        assert CATEGORIES[-1] == "Communication_Services"

    def test_synthetic_ranking_is_permutation(self):
        assert sorted(SYNTHETIC_RANKING) == sorted(CATEGORIES)

    def test_synthetic_totals_follow_ranking(self):
        totals = [SYNTHETIC_TOTAL_LIKES[name] for name in SYNTHETIC_RANKING]
        assert totals == sorted(totals, reverse=True)

    def test_category_index(self):
        assert category_index("Entertainment") == 0
        assert category_index("Sport") == CATEGORIES.index("Sport")

    def test_category_index_unknown(self):
        with pytest.raises(KeyError):
            category_index("Quantum_physics")

    def test_paper_epsilons(self):
        assert VK_EPSILON == 1
        assert SYNTHETIC_EPSILON == 15_000


class TestVKGenerator:
    def test_user_shape_and_dtype(self):
        users = VKGenerator(seed=1).sample_users(50)
        assert users.shape == (50, 27)
        assert users.dtype == np.int64
        assert (users >= 0).all()

    def test_reproducible(self):
        first = VKGenerator(seed=9).sample_users(30)
        second = VKGenerator(seed=9).sample_users(30)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = VKGenerator(seed=1).sample_users(30)
        second = VKGenerator(seed=2).sample_users(30)
        assert not np.array_equal(first, second)

    def test_minimum_activity_respected(self):
        generator = VKGenerator(seed=3, min_activity=80)
        users = generator.sample_users(100)
        assert (users.sum(axis=1) >= 80).all()

    def test_focus_tilts_profiles(self):
        generator = VKGenerator(seed=4)
        sport = generator.sample_users(300, focus=("Sport",))
        neutral = generator.sample_users(300)
        sport_share = sport[:, category_index("Sport")].sum() / sport.sum()
        neutral_share = neutral[:, category_index("Sport")].sum() / neutral.sum()
        assert sport_share > 2 * neutral_share

    def test_population_skew_matches_table1_head(self):
        population = VKGenerator(seed=7).sample_population(4000)
        ranks = ranking(population)
        # The heavy head of Table 1 must dominate.
        assert ranks[0].category == "Entertainment"
        top5 = {entry.category for entry in ranks[:5]}
        assert "Hobbies" in top5

    def test_zero_users(self):
        assert VKGenerator(seed=1).sample_users(0).shape == (0, 27)

    def test_negative_users_rejected(self):
        with pytest.raises(ConfigurationError):
            VKGenerator(seed=1).sample_users(-1)

    def test_invalid_noise_probability(self):
        with pytest.raises(ConfigurationError):
            VKGenerator(seed=1, noise_probability=0.9)

    def test_make_community(self):
        community = VKGenerator(seed=1).make_community("Nike", "Sport", 40, page_id=99)
        assert community.n_users == 40
        assert community.category == "Sport"
        assert community.page_id == 99


class TestPopulationCoupleMode:
    def test_shapes_and_metadata(self):
        generator = VKGenerator(seed=3)
        community_b, community_a = generator.make_population_couple(
            population_size=800,
            size_b=100,
            size_a=150,
            category_b="Sport",
            category_a="Hobbies",
        )
        assert len(community_b) == 100
        assert len(community_a) == 150
        assert community_b.category == "Sport"
        assert "population" in community_a.name

    def test_zero_drift_co_subscribers_fully_match(self):
        from repro import csj_similarity

        generator = VKGenerator(seed=5)
        community_b, community_a = generator.make_population_couple(
            population_size=600,
            size_b=100,
            size_a=120,
            category_b="Sport",
            category_a="Sport",
            drift=0,
        )
        # With zero drift, co-subscribers are byte-identical rows, so
        # the matching covers at least the raw intersection.
        rows_b = {tuple(row) for row in community_b.vectors}
        rows_a = {tuple(row) for row in community_a.vectors}
        intersection = len(rows_b & rows_a)
        result = csj_similarity(community_b, community_a, epsilon=0)
        assert result.n_matched >= intersection * 0.9

    def test_same_category_overlaps_more_than_different(self):
        from repro import csj_similarity

        generator = VKGenerator(seed=7)
        same = generator.make_population_couple(
            population_size=1500,
            size_b=250,
            size_a=320,
            category_b="Sport",
            category_a="Sport",
            drift=1,
            seed_key="same",
        )
        different = generator.make_population_couple(
            population_size=1500,
            size_b=250,
            size_a=320,
            category_b="Sport",
            category_a="Restaurants",
            drift=1,
            seed_key="diff",
        )
        same_similarity = csj_similarity(*same, epsilon=1).similarity
        different_similarity = csj_similarity(*different, epsilon=1).similarity
        assert same_similarity > different_similarity

    def test_reproducible(self):
        kwargs = dict(
            population_size=500,
            size_b=80,
            size_a=100,
            category_b="Music",
            category_a="Celebrity",
            drift=1,
        )
        first = VKGenerator(seed=9).make_population_couple(**kwargs)
        second = VKGenerator(seed=9).make_population_couple(**kwargs)
        assert np.array_equal(first[0].vectors, second[0].vectors)
        assert np.array_equal(first[1].vectors, second[1].vectors)

    def test_invalid_sizes(self):
        generator = VKGenerator(seed=1)
        with pytest.raises(ConfigurationError):
            generator.make_population_couple(
                population_size=50,
                size_b=40,
                size_a=60,
                category_b="Sport",
                category_a="Sport",
            )
        with pytest.raises(ConfigurationError):
            generator.make_population_couple(
                population_size=500,
                size_b=100,
                size_a=80,
                category_b="Sport",
                category_a="Sport",
            )


class TestSyntheticGenerator:
    def test_user_shape_and_range(self):
        generator = SyntheticGenerator(seed=1)
        users = generator.sample_users(100)
        assert users.shape == (100, 27)
        assert users.min() >= 0
        # Per-category ranges scale around 500000 by about +-12%.
        assert users.max() <= int(500_000 * 1.25)

    def test_reproducible(self):
        first = SyntheticGenerator(seed=5).sample_users(30)
        second = SyntheticGenerator(seed=5).sample_users(30)
        assert np.array_equal(first, second)

    def test_population_is_near_uniform(self):
        population = SyntheticGenerator(seed=7).sample_population(4000)
        totals = np.array(list(category_totals(population).values()), dtype=float)
        spread = totals.max() / totals.min()
        # Far flatter than VK's ~4450x skew.
        assert spread < 2.0

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticGenerator(seed=1, epsilon=10**9)

    def test_couple_cluster_noise_within_epsilon(self):
        generator = SyntheticGenerator(seed=11)
        built = generator.make_couple_vectors(
            size_b=80, size_a=100, overlap_fraction=1.0
        )
        # Full overlap: the exact similarity must be (near) 1 because
        # every same-cluster pair stays within epsilon per dimension.
        from repro import Community, csj_similarity

        result = csj_similarity(
            Community("B", built.vectors_b),
            Community("A", built.vectors_a),
            epsilon=SYNTHETIC_EPSILON,
            method="ex-minmax",
            matcher="hopcroft_karp",
        )
        assert result.similarity >= 0.95


class TestClusterBuilder:
    def make(self, overlap: float, seed: int = 0, size_b: int = 60, size_a: int = 80):
        rng = np.random.default_rng(seed)

        def archetypes(n: int) -> np.ndarray:
            return rng.integers(0, 1000, size=(n, 5), dtype=np.int64)

        def noise(rows: np.ndarray) -> np.ndarray:
            return rows.copy()

        return build_couple_vectors(
            rng,
            size_b=size_b,
            size_a=size_a,
            overlap_fraction=overlap,
            shared_archetypes=archetypes,
            fresh_archetypes_b=archetypes,
            fresh_archetypes_a=archetypes,
            noise=noise,
        )

    def test_sizes_exact(self):
        built = self.make(0.3)
        assert built.vectors_b.shape == (60, 5)
        assert built.vectors_a.shape == (80, 5)

    def test_shared_counts_track_overlap(self):
        built = self.make(0.25)
        assert built.n_shared_b == 15
        assert built.n_shared_b <= built.n_shared_a <= 80

    def test_zero_overlap(self):
        built = self.make(0.0)
        assert built.n_shared_b == 0

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(0.2, size_b=50, size_a=40)


class TestStats:
    def test_category_totals(self):
        vectors = np.array([[1, 2, 3], [4, 5, 6]])
        totals = category_totals(vectors)
        assert totals[CATEGORIES[0]] == 5
        assert totals[CATEGORIES[2]] == 9

    def test_ranking_descending_with_tie_break(self):
        vectors = np.array([[5, 9, 5]])
        ranks = ranking(vectors)
        assert ranks[0].category == CATEGORIES[1]
        assert ranks[0].rank == 1
        # Ties broken alphabetically for determinism.
        tied = sorted([ranks[1].category, ranks[2].category])
        assert [ranks[1].category, ranks[2].category] == tied

    def test_max_likes_per_dimension(self):
        assert max_likes_per_dimension(np.array([[3, 7], [5, 2]])) == 7

    def test_rejects_bad_shapes(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            category_totals(np.arange(5))
        with pytest.raises(ValidationError):
            category_totals(np.zeros((2, 50)))
