"""Tests for pruning-effectiveness reporting (repro.analysis.events_report)."""

from __future__ import annotations

import pytest

from repro.analysis.events_report import profile_events, render_event_report
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from tests.conftest import random_couple


@pytest.fixture(scope="module")
def profiles():
    vectors_b, vectors_a = random_couple(55, n_b=30, n_a=40, high=40)
    community_b = Community("B", vectors_b)
    community_a = Community("A", vectors_a)
    return profile_events(community_b, community_a, epsilon=1)


class TestProfileEvents:
    def test_one_profile_per_method(self, profiles):
        assert [p.method for p in profiles] == [
            "ap-baseline",
            "ap-minmax",
            "ex-baseline",
            "ex-minmax",
        ]

    def test_ex_baseline_is_exhaustive(self, profiles):
        ex_baseline = next(p for p in profiles if p.method == "ex-baseline")
        assert ex_baseline.counts.comparisons == ex_baseline.exhaustive_comparisons
        assert ex_baseline.comparisons_saved_percent == pytest.approx(0.0)

    def test_minmax_saves_comparisons(self, profiles):
        minmax = next(p for p in profiles if p.method == "ex-minmax")
        baseline = next(p for p in profiles if p.method == "ex-baseline")
        assert minmax.counts.comparisons < baseline.counts.comparisons
        assert minmax.comparisons_saved_percent > 0.0

    def test_minmax_uses_pruning_events(self, profiles):
        minmax = next(p for p in profiles if p.method == "ap-minmax")
        assert (
            minmax.counts.min_prune
            + minmax.counts.max_prune
            + minmax.counts.no_overlap
        ) > 0

    def test_engine_override_rejected(self):
        vectors_b, vectors_a = random_couple(1)
        with pytest.raises(ConfigurationError, match="python engine"):
            profile_events(
                Community("B", vectors_b),
                Community("A", vectors_a),
                epsilon=1,
                engine="numpy",
            )


class TestRenderEventReport:
    def test_render_has_headers_and_rows(self, profiles):
        rendered = render_event_report(profiles)
        assert "MIN PRUNE" in rendered
        assert "Ex-MinMax" in rendered
        assert rendered.count("\n") >= 5

    def test_saved_column_formatted(self, profiles):
        rendered = render_event_report(profiles)
        assert "%" in rendered
