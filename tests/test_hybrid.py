"""Tests for the MinMax-SuperEGO hybrid (repro.algorithms.hybrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import csj_similarity
from repro.algorithms.hybrid import ApHybrid, ExHybrid
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)


def couple(seed: int) -> tuple[Community, Community]:
    vectors_b, vectors_a = random_couple(seed)
    return Community("B", vectors_b), Community("A", vectors_a)


class TestExHybrid:
    @pytest.mark.parametrize("seed", range(8))
    def test_equals_ex_baseline(self, seed):
        b, a = couple(seed + 40)
        hybrid = ExHybrid(1, t=4).join(b, a)
        baseline = csj_similarity(b, a, epsilon=1, method="ex-baseline")
        assert set(hybrid.pair_tuples()) == set(baseline.pair_tuples())

    @pytest.mark.parametrize("seed", range(4))
    def test_hopcroft_karp_reaches_oracle(self, seed):
        b, a = couple(seed + 80)
        result = ExHybrid(1, t=4, matcher="hopcroft_karp").join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(b.vectors, a.vectors, 1)
        )
        assert result.n_matched == oracle

    @pytest.mark.parametrize("t", [2, 8, 64, 1024])
    def test_threshold_invariance(self, t):
        b, a = couple(11)
        reference = ExHybrid(1, t=4).join(b, a)
        varied = ExHybrid(1, t=t).join(b, a)
        assert set(varied.pair_tuples()) == set(reference.pair_tuples())

    @pytest.mark.parametrize("epsilon", [0, 1, 3])
    def test_epsilon_grid(self, epsilon):
        b, a = couple(13)
        result = ExHybrid(epsilon, t=4, matcher="hopcroft_karp").join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(b.vectors, a.vectors, epsilon)
        )
        assert result.n_matched == oracle
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, epsilon)

    def test_no_accuracy_loss_unlike_normalized_superego(self, vk_mini_couple):
        # Section 6.2: the hybrid works on raw numeric data, so it keeps
        # the exact similarity SuperEGO's normalisation loses.
        b, a = vk_mini_couple
        hybrid = ExHybrid(1).join(b, a)
        exact = csj_similarity(b, a, epsilon=1, method="ex-minmax")
        assert hybrid.n_matched == exact.n_matched

    def test_flags(self):
        assert ExHybrid(1).name == "ex-hybrid"
        assert ExHybrid(1).exact is True
        with pytest.raises(ConfigurationError):
            ExHybrid(1, t=1)


class TestApHybrid:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_one_to_one(self, seed):
        b, a = couple(seed + 120)
        result = ApHybrid(1, t=4).join(b, a)
        result.check_one_to_one()
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_exact(self, seed):
        b, a = couple(seed + 160)
        approx = ApHybrid(1, t=4).join(b, a)
        exact = ExHybrid(1, t=4, matcher="hopcroft_karp").join(b, a)
        assert approx.n_matched <= exact.n_matched

    def test_registry_exposure(self):
        from repro import get_algorithm
        from repro.algorithms import HYBRID_METHODS, method_display_name

        assert HYBRID_METHODS == ("ap-hybrid", "ex-hybrid")
        assert isinstance(get_algorithm("ex-hybrid", 1), ExHybrid)
        assert method_display_name("ex-hybrid") == "Ex-Hybrid"

    def test_flags(self):
        assert ApHybrid(1).name == "ap-hybrid"
        assert ApHybrid(1).exact is False


class TestHybridSpeedClaim:
    def test_fewer_full_comparisons_than_raw_superego_leaves(self):
        # The Section 6.2 claim: the encoded leaf join runs fewer full
        # d-dimensional comparisons than the plain nested-loop leaves of
        # raw SuperEGO on the same data.
        from repro.algorithms.superego import ExSuperEGO

        rng = np.random.default_rng(5)
        base = rng.integers(0, 60, size=(150, 9))
        noisy = np.maximum(base + rng.integers(-1, 2, size=base.shape), 0)
        b = Community("B", base)
        a = Community("A", noisy)
        hybrid = ExHybrid(1, t=16).join(b, a)
        superego = ExSuperEGO(1, t=16, use_normalized=False).join(b, a)
        assert hybrid.n_matched == superego.n_matched
        assert hybrid.events.comparisons < superego.events.comparisons
