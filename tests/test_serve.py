"""Tests of the repro.serve similarity service.

Determinism notes: overload and deadline tests never sleep-and-hope.
They inject a single-worker executor whose only worker is parked on a
``threading.Event`` (so executor backlog builds exactly as scripted)
and an advanceable fake clock shared by the server and its admission
controller (so deadlines expire exactly when the test says so).
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.apps import top_k_pairs
from repro.cli import main as cli_main
from repro.engine import BatchEngine, PairJob
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionTicket,
    CommunityStore,
    DeadlineExceededError,
    OverloadedError,
    Rejection,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    UnknownCommunityError,
    decode_request,
    decode_response,
    encode_request,
)
from repro.serve.protocol import ProtocolError
from repro.testing import banded_community_fleet
from repro._version import __version__

pytestmark = pytest.mark.serve

EPSILON = 30

#: Timing-only CSJResult keys excluded from parity comparisons.
_TIMING_KEYS = ("elapsed_seconds", "stage_seconds")


class FakeClock:
    """Advanceable monotonic clock (seconds)."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _fleet():
    return banded_community_fleet(n_bands=2, per_band=2, users=16, dims=4, seed=11)


def _store_with_fleet() -> CommunityStore:
    store = CommunityStore()
    for community in _fleet():
        store.register_community(community)
    return store


def _wait_until(predicate, timeout: float = 10.0) -> None:
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached within timeout")


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_roundtrip(self):
        line = encode_request(
            "join", {"first": "a"}, request_id=7, deadline_ms=250
        )
        request = decode_request(line)
        assert request.op == "join"
        assert request.args == {"first": "a"}
        assert request.id == 7
        assert request.deadline_ms == 250

    @pytest.mark.parametrize(
        "line",
        [
            b"\xff\xfe not utf-8",
            b"{nope",
            b"[1, 2]",
            b'{"v": 99, "op": "health", "args": {}}',
            b'{"v": 1, "op": "frobnicate", "args": {}}',
            b'{"v": 1, "op": "join", "args": []}',
            b'{"v": 1, "op": "join", "args": {}, "deadline_ms": -5}',
            b'{"v": 1, "op": "join", "args": {}, "deadline_ms": true}',
            b'{"v": 1, "args": {}}',
        ],
    )
    def test_malformed_requests_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_unknown_op_has_specific_code(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b'{"v": 1, "op": "frobnicate", "args": {}}')
        assert excinfo.value.code == "unknown_op"


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
class TestCommunityStore:
    def test_register_and_snapshot(self):
        store = CommunityStore()
        snapshot = store.register("alpha", [[1, 0], [0, 2]])
        assert snapshot.version == 0
        assert snapshot.community.n_users == 2
        assert "alpha" in store
        assert store.names() == ["alpha"]

    def test_duplicate_register_rejected_unless_replace(self):
        store = CommunityStore()
        store.register("alpha", [[1, 0]])
        with pytest.raises(Exception, match="already registered"):
            store.register("alpha", [[2, 2]])
        replaced = store.register("alpha", [[2, 2], [3, 3]], replace=True)
        assert replaced.community.n_users == 2

    def test_snapshot_cached_per_version(self):
        store = _store_with_fleet()
        name = store.names()[0]
        first = store.snapshot(name)
        again = store.snapshot(name)
        assert again.community is first.community  # frozen exactly once
        store.subscribe(name, [1] * first.community.n_dims)
        after = store.snapshot(name)
        assert after.version > first.version
        assert after.community is not first.community
        assert after.community.n_users == first.community.n_users + 1

    def test_mutations_bump_version(self):
        store = CommunityStore()
        store.register("alpha", [[1, 0], [0, 2]])
        v1 = store.subscribe("alpha", [3, 3])["version"]
        v2 = store.record_like("alpha", 0, 1)["version"]
        v3 = store.unsubscribe("alpha", 2)["version"]
        assert 0 < v1 < v2 < v3

    def test_unknown_community(self):
        store = _store_with_fleet()
        with pytest.raises(UnknownCommunityError, match="ghost"):
            store.snapshot("ghost")


# ----------------------------------------------------------------------
# admission (unit, fake clock)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_pending_bound_sheds_then_recovers(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_pending=2, queue_retry_after_ms=25.0), clock=clock
        )
        tickets = [controller.try_admit("join") for _ in range(2)]
        assert all(isinstance(t, AdmissionTicket) for t in tickets)
        rejected = controller.try_admit("join")
        assert isinstance(rejected, Rejection)
        assert rejected.reason == "queue_full"
        assert rejected.retry_after_ms == 25.0
        tickets[0].release()
        tickets[0].release()  # idempotent
        assert isinstance(controller.try_admit("join"), AdmissionTicket)
        assert controller.pending == 2
        assert controller.shed_total == 1

    def test_token_bucket_exact_retry_hint(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_pending=100, rate=10.0, burst=2), clock=clock
        )
        for _ in range(2):
            assert isinstance(controller.try_admit("join"), AdmissionTicket)
        rejected = controller.try_admit("join")
        assert isinstance(rejected, Rejection)
        assert rejected.reason == "rate_limited"
        # bucket is exactly empty: one token refills in 1/rate seconds
        assert rejected.retry_after_ms == pytest.approx(100.0)
        clock.advance(0.1)  # exactly one token
        assert isinstance(controller.try_admit("join"), AdmissionTicket)
        assert isinstance(controller.try_admit("join"), Rejection)

    def test_deadline_stamped_and_expires_with_clock(self):
        clock = FakeClock()
        controller = AdmissionController(AdmissionPolicy(), clock=clock)
        ticket = controller.try_admit("join", deadline_ms=500)
        assert isinstance(ticket, AdmissionTicket)
        assert not ticket.deadline.expired()
        assert ticket.deadline.remaining_ms() == pytest.approx(500.0)
        clock.advance(0.5)
        assert ticket.deadline.expired()
        assert ticket.deadline.remaining_ms() == 0.0

    def test_policy_default_deadline_applies(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(default_deadline_ms=100.0), clock=clock
        )
        ticket = controller.try_admit("join")
        assert isinstance(ticket, AdmissionTicket)
        clock.advance(0.2)
        assert ticket.deadline.expired()

    def test_no_deadline_never_expires(self):
        clock = FakeClock()
        controller = AdmissionController(AdmissionPolicy(), clock=clock)
        ticket = controller.try_admit("join")
        assert isinstance(ticket, AdmissionTicket)
        clock.advance(10_000)
        assert not ticket.deadline.expired()
        assert ticket.deadline.remaining_ms() is None


# ----------------------------------------------------------------------
# end-to-end service
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_register_join_mutate_join(self):
        with ServerThread() as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                health = client.health()
                assert health["status"] == "ok"
                assert health["version"] == __version__
                client.register("alpha", [[1, 0, 2], [0, 3, 1], [2, 2, 0]])
                client.register("beta", [[1, 1, 1], [0, 2, 2], [3, 0, 1]])
                first = client.join("alpha", "beta", epsilon=2)
                assert first["first"]["version"] == 0
                assert first["disposition"] == "computed"

                mutated = client.subscribe("alpha", [1, 1, 1])
                assert mutated["version"] == 1

                second = client.join("alpha", "beta", epsilon=2)
                # the next join sees the new snapshot version
                assert second["first"]["version"] == 1
                assert second["first"]["n_users"] == 4
                assert second["disposition"] == "computed"

                stats = client.stats()
                assert stats["communities"]["alpha"]["version"] == 1
                assert stats["requests_by_op"]["join"] == 2

    def test_join_parity_with_direct_engine(self):
        communities = _fleet()
        b, a = communities[0], communities[1]
        with BatchEngine([b, a], n_jobs=1) as engine:
            direct = engine.run(
                [PairJob.build(0, 1, "ex-minmax", EPSILON)]
            )[0].result.to_dict()

        with ServerThread(store=_store_with_fleet()) as st:
            with ServeClient(*st.address) as client:
                served = client.join(b.name, a.name, epsilon=EPSILON)
        payload = served["result"]
        for key in _TIMING_KEYS:
            direct.pop(key, None)
            payload.pop(key, None)
        # byte-identical similarity and matching, same code path (the
        # JSON round trip only turns the matched-pair tuples into lists)
        import json

        assert payload == json.loads(json.dumps(direct))

    def test_repeat_join_served_from_cache(self):
        with ServerThread(store=_store_with_fleet()) as st:
            names = st.server.store.names()
            with ServeClient(*st.address) as client:
                first = client.join(names[0], names[1], epsilon=EPSILON)
                second = client.join(names[0], names[1], epsilon=EPSILON)
                assert first["disposition"] == "computed"
                assert second["disposition"] == "cached"
                assert second["result"]["similarity"] == first["result"]["similarity"]
                cache = client.stats()["cache"]
                assert cache["hits"] == 1

    def test_mutation_invalidates_cache_via_fingerprint(self):
        with ServerThread(store=_store_with_fleet()) as st:
            names = st.server.store.names()
            with ServeClient(*st.address) as client:
                client.join(names[0], names[1], epsilon=EPSILON)
                client.record_like(names[0], 0, 1, 5)
                after = client.join(names[0], names[1], epsilon=EPSILON)
                # changed contents -> changed fingerprint -> recompute
                assert after["disposition"] == "computed"
                assert after["first"]["version"] == 1

    def test_topk_parity_with_direct_ranking(self):
        communities = _fleet()
        direct = top_k_pairs(communities, epsilon=EPSILON, k=3)
        expected = [
            (s.name_b, s.name_a, s.similarity) for s in direct
        ]
        with ServerThread(store=_store_with_fleet()) as st:
            with ServeClient(*st.address) as client:
                served = client.topk(
                    epsilon=EPSILON, k=3, names=[c.name for c in communities]
                )
        ranking = [
            (row["name_b"], row["name_a"], row["similarity"])
            for row in served["ranking"]
        ]
        assert ranking == expected
        assert served["versions"] == {c.name: 0 for c in communities}

    def test_error_responses_over_the_wire(self):
        with ServerThread(store=_store_with_fleet()) as st:
            names = st.server.store.names()
            with ServeClient(*st.address) as client:
                assert client.send_raw(b"{nope")["error"]["code"] == "bad_request"
                assert (
                    client.send_raw('{"v":1,"op":"frobnicate","args":{}}')
                    ["error"]["code"]
                    == "unknown_op"
                )
                with pytest.raises(ServeError, match="not registered") as excinfo:
                    client.join(names[0], "ghost", epsilon=1)
                assert excinfo.value.code == "not_found"
                with pytest.raises(ServeError, match="epsilon") as excinfo:
                    client.request("join", {"first": names[0], "second": names[1]})
                assert excinfo.value.code == "invalid"
                with pytest.raises(ServeError, match="unknown method") as excinfo:
                    client.join(names[0], names[1], epsilon=1, method="bogus")
                assert excinfo.value.code == "invalid"
                # the connection survived every error above
                assert client.health()["status"] == "ok"

    def test_zero_deadline_expires_before_execution(self):
        with ServerThread(store=_store_with_fleet()) as st:
            names = st.server.store.names()
            with ServeClient(*st.address) as client:
                with pytest.raises(DeadlineExceededError, match="before execution"):
                    client.join(names[0], names[1], epsilon=EPSILON, deadline_ms=0)
                assert client.stats()["deadline_exceeded_total"] == 1


# ----------------------------------------------------------------------
# overload + deadline (deterministic via gated executor / fake clock)
# ----------------------------------------------------------------------
def _raw_connection(address):
    sock = socket.create_connection(address, timeout=30)
    return sock, sock.makefile("rwb")


class TestOverloadAndDeadlines:
    def test_queue_full_sheds_with_retry_hint(self):
        gate = threading.Event()
        executor = ThreadPoolExecutor(max_workers=1)
        executor.submit(gate.wait)  # occupy the only worker
        config = ServeConfig(
            admission=AdmissionPolicy(max_pending=2, queue_retry_after_ms=40.0)
        )
        try:
            with ServerThread(
                config, store=_store_with_fleet(), executor=executor
            ) as st:
                server = st.server
                names = server.store.names()
                join_line = lambda rid: encode_request(
                    "join",
                    {"first": names[0], "second": names[1], "epsilon": EPSILON},
                    request_id=rid,
                )
                # park two joins: admitted, waiting on the blocked executor
                parked = [_raw_connection(st.address) for _ in range(2)]
                for rid, (sock, _file) in enumerate(parked, start=1):
                    sock.sendall(join_line(rid))
                _wait_until(lambda: server.admission.pending == 2)

                with ServeClient(*st.address) as client:
                    with pytest.raises(OverloadedError) as excinfo:
                        client.join(names[0], names[1], epsilon=EPSILON)
                    assert excinfo.value.retry_after_ms == 40.0
                    # monitoring plane answers while shedding
                    stats = client.stats()
                    assert stats["shed_by_reason"] == {"queue_full": 1}
                    assert stats["admission"]["pending"] == 2
                    assert server.metrics.counter(
                        "repro_serve_shed_total", reason="queue_full"
                    ) == 1

                    gate.set()  # drain the backlog
                    for _sock, file in parked:
                        response = decode_response(file.readline())
                        assert response["ok"], response
                    _wait_until(lambda: server.admission.pending == 0)
                    # shedding was load, not damage: service recovers
                    after = client.join(names[0], names[1], epsilon=EPSILON)
                    assert after["disposition"] in ("computed", "cached")
                for sock, file in parked:
                    file.close()
                    sock.close()
        finally:
            gate.set()
            executor.shutdown(wait=False)

    def test_deadline_expires_during_execution(self):
        gate = threading.Event()
        executor = ThreadPoolExecutor(max_workers=1)
        executor.submit(gate.wait)
        clock = FakeClock()
        try:
            with ServerThread(
                store=_store_with_fleet(), executor=executor, clock=clock
            ) as st:
                server = st.server
                names = server.store.names()
                sock, file = _raw_connection(st.address)
                sock.sendall(
                    encode_request(
                        "join",
                        {"first": names[0], "second": names[1], "epsilon": EPSILON},
                        request_id=1,
                        deadline_ms=500,
                    )
                )
                _wait_until(lambda: server.admission.pending == 1)
                clock.advance(1.0)  # past the 500 ms budget
                gate.set()
                response = decode_response(file.readline())
                assert not response["ok"]
                assert response["error"]["code"] == "deadline_exceeded"
                assert "during execution" in response["error"]["message"]
                assert server.deadline_exceeded_total == 1
                file.close()
                sock.close()
        finally:
            gate.set()
            executor.shutdown(wait=False)

    def test_rate_limit_sheds_end_to_end(self):
        clock = FakeClock()
        config = ServeConfig(
            admission=AdmissionPolicy(max_pending=64, rate=10.0, burst=1)
        )
        with ServerThread(config, store=_store_with_fleet(), clock=clock) as st:
            names = st.server.store.names()
            with ServeClient(*st.address) as client:
                client.join(names[0], names[1], epsilon=EPSILON)  # drains bucket
                with pytest.raises(OverloadedError) as excinfo:
                    client.join(names[0], names[1], epsilon=EPSILON)
                assert excinfo.value.retry_after_ms == pytest.approx(100.0)
                clock.advance(0.1)  # refill exactly one token
                assert client.join(names[0], names[1], epsilon=EPSILON)[
                    "disposition"
                ] == "cached"
                assert client.stats()["shed_by_reason"] == {"rate_limited": 1}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
