"""Tests for config-driven experiments (repro.analysis.config)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.config import CUSTOM_TABLE, ExperimentConfig, run_experiment
from repro.analysis.tables import render_method_table
from repro.core.errors import ConfigurationError, ValidationError


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig(name="x")
        assert config.dataset == "vk"
        assert config.resolved_epsilon == 1
        assert config.methods == ("ex-minmax",)
        assert len(config.couple_specs()) == 10

    def test_epsilon_override(self):
        config = ExperimentConfig(name="x", epsilon=5)
        assert config.resolved_epsilon == 5

    def test_synthetic_default_epsilon(self):
        config = ExperimentConfig(name="x", dataset="synthetic")
        assert config.resolved_epsilon == 15000

    def test_couple_specs_follow_selection(self):
        config = ExperimentConfig(name="x", couples=(13, 2))
        assert [spec.c_id for spec in config.couple_specs()] == [13, 2]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "dataset": "csv"},
            {"name": "x", "scale": 0},
            {"name": "x", "methods": ()},
            {"name": "x", "methods": ("quantum-join",)},
            {"name": "x", "couples": (99,)},
            {"name": "x", "couples": ()},
            {"name": "x", "engine": "rust"},
            {"name": "x", "method_options": {"ex-superego": {}}},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown configuration keys"):
            ExperimentConfig.from_dict({"name": "x", "workers": 4})

    def test_from_dict_normalises_sequences(self):
        config = ExperimentConfig.from_dict(
            {"name": "x", "methods": ["ap-minmax"], "couples": [1, 2]}
        )
        assert config.methods == ("ap-minmax",)
        assert config.couples == (1, 2)

    def test_from_json(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"name": "from-file", "couples": [1]}))
        config = ExperimentConfig.from_json(path)
        assert config.name == "from-file"

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such config"):
            ExperimentConfig.from_json(tmp_path / "ghost.json")

    def test_from_json_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="not valid JSON"):
            ExperimentConfig.from_json(path)

    def test_from_json_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValidationError, match="JSON object"):
            ExperimentConfig.from_json(path)


class TestRunExperiment:
    def test_run_and_render(self):
        config = ExperimentConfig(
            name="mini",
            scale=1 / 2048,
            methods=("ap-minmax", "ex-minmax"),
            couples=(1, 3),
        )
        run = run_experiment(config)
        assert run.table == CUSTOM_TABLE
        assert len(run.rows) == 2
        assert run.methods == ("ap-minmax", "ex-minmax")
        rendered = render_method_table(run)
        assert "Custom experiment" in rendered
        assert "CSJ methods" in rendered

    def test_method_options_forwarded(self):
        config = ExperimentConfig(
            name="opts",
            scale=1 / 2048,
            methods=("ex-minmax",),
            couples=(1,),
            method_options={"ex-minmax": {"matcher": "hopcroft_karp"}},
        )
        run = run_experiment(config)
        assert run.rows[0].results["ex-minmax"].n_matched >= 0

    def test_results_persist_round_trip(self, tmp_path):
        from repro.analysis.results_io import load_table_run, save_table_run

        config = ExperimentConfig(
            name="persist", scale=1 / 2048, couples=(1,), methods=("ex-minmax",)
        )
        run = run_experiment(config)
        path = save_table_run(tmp_path / "run.json", run)
        restored = load_table_run(path)
        assert restored.table == CUSTOM_TABLE
        assert restored.rows[0].results["ex-minmax"].n_matched == (
            run.rows[0].results["ex-minmax"].n_matched
        )

    def test_cli_run_config(self, tmp_path, capsys):
        from repro.cli import main

        config_path = tmp_path / "config.json"
        config_path.write_text(
            json.dumps(
                {
                    "name": "cli-test",
                    "scale": 0.0005,
                    "methods": ["ex-minmax"],
                    "couples": [1],
                }
            )
        )
        save_path = tmp_path / "out.json"
        assert main(["run-config", str(config_path), "--save", str(save_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert save_path.exists()
