"""Tests for the out-of-core join extension (repro.extensions.out_of_core)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import csj_similarity
from repro.core.errors import ConfigurationError, ValidationError
from repro.core.types import Community
from repro.extensions import OnDiskCommunity, out_of_core_similarity
from tests.conftest import assert_valid_matching, random_couple


@pytest.fixture
def disk_couple(tmp_path):
    vectors_b, vectors_a = random_couple(313, n_b=40, n_a=55)
    disk_b = OnDiskCommunity.create(tmp_path / "b", vectors_b, name="B")
    disk_a = OnDiskCommunity.create(tmp_path / "a", vectors_a, name="A")
    return disk_b, disk_a, vectors_b, vectors_a


class TestOnDiskCommunity:
    def test_create_and_open(self, tmp_path):
        vectors = np.arange(12).reshape(4, 3)
        created = OnDiskCommunity.create(
            tmp_path / "c", vectors, name="Nike", category="Sport"
        )
        reopened = OnDiskCommunity.open(tmp_path / "c")
        assert reopened.name == "Nike"
        assert reopened.category == "Sport"
        assert reopened.n_users == 4
        assert np.array_equal(np.asarray(reopened.vectors), vectors)
        assert created.n_dims == 3

    def test_from_community(self, tmp_path):
        community = Community("X", np.ones((5, 2), dtype=np.int64), "Media")
        disk = OnDiskCommunity.from_community(tmp_path / "x", community)
        assert disk.name == "X"
        assert disk.category == "Media"

    def test_open_missing(self, tmp_path):
        with pytest.raises(ValidationError, match="no on-disk community"):
            OnDiskCommunity.open(tmp_path / "ghost")

    def test_open_rejects_wrong_shape(self, tmp_path):
        np.save(tmp_path / "flat.npy", np.arange(5))
        with pytest.raises(ValidationError, match="2-D"):
            OnDiskCommunity.open(tmp_path / "flat")

    def test_streaming_row_sums(self, disk_couple):
        disk_b, _, vectors_b, _ = disk_couple
        for chunk_size in (1, 7, 1000):
            sums = disk_b.row_sums(chunk_size)
            assert np.array_equal(sums, vectors_b.sum(axis=1))

    def test_streaming_window_bounds(self, disk_couple):
        _, disk_a, _, vectors_a = disk_couple
        minimum, maximum = disk_a.window_bounds(epsilon=2, chunk_size=9)
        assert np.array_equal(minimum, np.maximum(vectors_a - 2, 0).sum(axis=1))
        assert np.array_equal(maximum, (vectors_a + 2).sum(axis=1))


class TestOutOfCoreJoin:
    @pytest.mark.parametrize("chunk_size", [1, 3, 17, 4096])
    def test_equals_in_memory_ex_minmax(self, disk_couple, chunk_size):
        disk_b, disk_a, vectors_b, vectors_a = disk_couple
        disk_result = out_of_core_similarity(
            disk_b, disk_a, epsilon=1, chunk_size=chunk_size
        )
        memory_result = csj_similarity(
            Community("B", vectors_b),
            Community("A", vectors_a),
            epsilon=1,
            method="ex-minmax",
        )
        assert set(disk_result.pair_tuples()) == set(memory_result.pair_tuples())

    def test_hopcroft_karp_matcher(self, disk_couple):
        disk_b, disk_a, vectors_b, vectors_a = disk_couple
        result = out_of_core_similarity(
            disk_b, disk_a, epsilon=1, matcher="hopcroft_karp"
        )
        assert_valid_matching(result.pair_tuples(), vectors_b, vectors_a, 1)
        csf = out_of_core_similarity(disk_b, disk_a, epsilon=1)
        assert result.n_matched >= csf.n_matched

    def test_requires_smaller_first(self, disk_couple):
        disk_b, disk_a, _, _ = disk_couple
        with pytest.raises(ValidationError, match="smaller community first"):
            out_of_core_similarity(disk_a, disk_b, epsilon=1)

    def test_dimension_mismatch(self, tmp_path, disk_couple):
        disk_b, _, _, _ = disk_couple
        other = OnDiskCommunity.create(
            tmp_path / "other", np.ones((60, 2), dtype=np.int64)
        )
        with pytest.raises(ValidationError, match="dimension mismatch"):
            out_of_core_similarity(disk_b, other, epsilon=1)

    def test_invalid_chunk_size(self, disk_couple):
        disk_b, disk_a, _, _ = disk_couple
        with pytest.raises(ConfigurationError):
            out_of_core_similarity(disk_b, disk_a, epsilon=1, chunk_size=0)

    def test_no_matches(self, tmp_path):
        disk_b = OnDiskCommunity.create(
            tmp_path / "zb", np.zeros((5, 3), dtype=np.int64)
        )
        disk_a = OnDiskCommunity.create(
            tmp_path / "za", np.full((6, 3), 1000, dtype=np.int64)
        )
        result = out_of_core_similarity(disk_b, disk_a, epsilon=1)
        assert result.n_matched == 0


class TestClose:
    def test_close_releases_mapping(self, tmp_path):
        disk = OnDiskCommunity.create(
            tmp_path / "c", np.arange(12).reshape(4, 3)
        )
        assert not disk.closed
        disk.close()
        assert disk.closed
        with pytest.raises(ValueError, match="closed"):
            np.asarray(disk.vectors)
        with pytest.raises(ValueError, match="closed"):
            disk.row_sums(4)

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs procfs"
    )
    def test_close_releases_file_handle(self, tmp_path):
        disk = OnDiskCommunity.create(tmp_path / "c", np.ones((4, 2)))
        target = os.path.realpath(disk.path)

        def held() -> bool:
            for entry in os.listdir("/proc/self/fd"):
                try:
                    if os.path.realpath(f"/proc/self/fd/{entry}") == target:
                        return True
                except OSError:
                    continue
            return False

        assert held()
        disk.close()
        assert not held()

    def test_close_is_idempotent(self, tmp_path):
        disk = OnDiskCommunity.create(tmp_path / "c", np.ones((3, 2)))
        disk.close()
        disk.close()
        assert disk.closed

    def test_context_manager_closes(self, tmp_path):
        with OnDiskCommunity.create(tmp_path / "c", np.ones((3, 2))) as disk:
            assert disk.n_users == 3
            assert not disk.closed
        assert disk.closed

    def test_metadata_survives_close(self, tmp_path):
        disk = OnDiskCommunity.create(
            tmp_path / "c", np.ones((4, 2)), name="N", category="Sport"
        )
        disk.close()
        assert disk.name == "N"
        assert disk.category == "Sport"

    def test_join_accepts_paths_and_closes_them(self, tmp_path, monkeypatch):
        vectors_b, vectors_a = random_couple(618, n_b=10, n_a=14)
        OnDiskCommunity.create(tmp_path / "b", vectors_b, name="B")
        OnDiskCommunity.create(tmp_path / "a", vectors_a, name="A")
        opened: list[OnDiskCommunity] = []
        real_open = OnDiskCommunity.open

        def spy(path):
            disk = real_open(path)
            opened.append(disk)
            return disk

        monkeypatch.setattr(OnDiskCommunity, "open", spy)
        from_paths = out_of_core_similarity(
            str(tmp_path / "b"), tmp_path / "a", epsilon=1
        )
        assert len(opened) == 2
        assert all(disk.closed for disk in opened)
        monkeypatch.undo()
        from_instances = out_of_core_similarity(
            OnDiskCommunity.open(tmp_path / "b"),
            OnDiskCommunity.open(tmp_path / "a"),
            epsilon=1,
        )
        assert set(from_paths.pair_tuples()) == set(from_instances.pair_tuples())

    def test_path_inputs_closed_even_on_error(self, tmp_path, monkeypatch):
        vectors_b, vectors_a = random_couple(619, n_b=10, n_a=14)
        OnDiskCommunity.create(tmp_path / "b", vectors_b)
        OnDiskCommunity.create(tmp_path / "mismatch", np.ones((20, 2)))
        opened: list[OnDiskCommunity] = []
        real_open = OnDiskCommunity.open

        def spy(path):
            disk = real_open(path)
            opened.append(disk)
            return disk

        monkeypatch.setattr(OnDiskCommunity, "open", spy)
        with pytest.raises(ValidationError, match="dimension mismatch"):
            out_of_core_similarity(
                tmp_path / "b", tmp_path / "mismatch", epsilon=1
            )
        assert len(opened) == 2
        assert all(disk.closed for disk in opened)

    def test_caller_instances_left_open(self, disk_couple):
        disk_b, disk_a, _, _ = disk_couple
        out_of_core_similarity(disk_b, disk_a, epsilon=1)
        assert not disk_b.closed
        assert not disk_a.closed
