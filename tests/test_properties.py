"""Property-based tests (hypothesis) on the core invariants.

These cover the load-bearing guarantees of the system:

* the MinMax encoding is a *necessary* condition — no candidate pair is
  ever pruned falsely;
* CSF and Hopcroft–Karp always return valid one-to-one matchings inside
  the candidate graph, with HK reaching the networkx maximum;
* every method's matching satisfies the CSJ per-dimension condition for
  arbitrary inputs, epsilons and part counts;
* the two engines of each method agree on arbitrary inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import csj_similarity
from repro.core.encoding import MinMaxEncoder, split_dimensions
from repro.core.matching import (
    build_adjacency,
    cover_smallest_first,
    hopcroft_karp,
    pairs_are_one_to_one,
    pairs_respect_graph,
)
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

counter_matrices = st.integers(min_value=2, max_value=10).flatmap(
    lambda n: st.integers(min_value=2, max_value=6).flatmap(
        lambda d: st.lists(
            st.lists(st.integers(min_value=0, max_value=6), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
)

edge_sets = st.sets(
    st.tuples(
        st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10)
    ),
    max_size=40,
)


def make_couple(rows_b: list[list[int]], rows_a: list[list[int]]):
    d = min(len(rows_b[0]), len(rows_a[0]))
    vectors_b = np.array([row[:d] for row in rows_b], dtype=np.int64)
    vectors_a = np.array([row[:d] for row in rows_a], dtype=np.int64)
    if len(vectors_b) > len(vectors_a):
        vectors_b, vectors_a = vectors_a, vectors_b
    # Respect the CSJ size-ratio rule: |A| <= 2 * |B|.
    vectors_a = vectors_a[: 2 * len(vectors_b)]
    return Community("B", vectors_b), Community("A", vectors_a)


# ----------------------------------------------------------------------
# encoding invariants
# ----------------------------------------------------------------------


@given(
    rows=counter_matrices,
    epsilon=st.integers(min_value=0, max_value=3),
    n_parts=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=60, deadline=None)
def test_encoding_never_prunes_a_true_match(rows, epsilon, n_parts):
    vectors = np.array(rows, dtype=np.int64)
    encoder = MinMaxEncoder(epsilon, n_parts)
    targets = encoder.encode_targets(vectors)
    candidates = encoder.encode_candidates(vectors)
    pos_b = {int(real): i for i, real in enumerate(targets.real_ids)}
    pos_a = {int(real): j for j, real in enumerate(candidates.real_ids)}
    n = len(vectors)
    for b_row in range(n):
        for a_row in range(n):
            if np.abs(vectors[b_row] - vectors[a_row]).max() > epsilon:
                continue
            i, j = pos_b[b_row], pos_a[a_row]
            assert candidates.encoded_min[j] <= targets.encoded_id[i] <= candidates.encoded_max[j]
            assert MinMaxEncoder.parts_overlap(
                targets.parts[i], candidates.range_min[j], candidates.range_max[j]
            )


@given(
    n_dims=st.integers(min_value=1, max_value=40),
    n_parts=st.integers(min_value=1, max_value=8),
)
def test_split_dimensions_partitions(n_dims, n_parts):
    if n_parts > n_dims:
        n_parts = n_dims
    slices = split_dimensions(n_dims, n_parts)
    assert len(slices) == n_parts
    covered = []
    for sl in slices:
        covered.extend(range(sl.start, sl.stop))
    assert covered == list(range(n_dims))
    sizes = [sl.stop - sl.start for sl in slices]
    assert max(sizes) - min(sizes) <= 1
    # Remainder goes to the last parts (Figure 1 layout).
    assert sizes == sorted(sizes)


# ----------------------------------------------------------------------
# matcher invariants
# ----------------------------------------------------------------------


@given(pairs=edge_sets)
@settings(max_examples=100, deadline=None)
def test_csf_valid_and_half_optimal(pairs):
    matched_b, matched_a = build_adjacency(pairs)
    result = cover_smallest_first(matched_b, matched_a)
    assert pairs_are_one_to_one(result)
    assert pairs_respect_graph(result, matched_b)
    optimum = maximum_matching_size(pairs)
    assert optimum / 2 <= len(result) <= optimum


@given(pairs=edge_sets)
@settings(max_examples=100, deadline=None)
def test_hopcroft_karp_is_maximum(pairs):
    matched_b, matched_a = build_adjacency(pairs)
    result = hopcroft_karp(matched_b, matched_a)
    assert pairs_are_one_to_one(result)
    assert pairs_respect_graph(result, matched_b)
    assert len(result) == maximum_matching_size(pairs)


# ----------------------------------------------------------------------
# whole-method invariants
# ----------------------------------------------------------------------


@given(
    rows_b=counter_matrices,
    rows_a=counter_matrices,
    epsilon=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=40, deadline=None)
def test_every_method_returns_valid_matchings(rows_b, rows_a, epsilon):
    b, a = make_couple(rows_b, rows_a)
    for method in ("ap-baseline", "ap-minmax", "ex-baseline", "ex-minmax"):
        result = csj_similarity(
            b, a, epsilon=epsilon, method=method, engine="numpy"
        )
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, epsilon)
        assert 0.0 <= result.similarity <= 1.0


@given(
    rows_b=counter_matrices,
    rows_a=counter_matrices,
    epsilon=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_engines_agree_on_arbitrary_inputs(rows_b, rows_a, epsilon):
    b, a = make_couple(rows_b, rows_a)
    for method in ("ap-minmax", "ex-minmax"):
        python = csj_similarity(b, a, epsilon=epsilon, method=method, engine="python")
        numpy_ = csj_similarity(b, a, epsilon=epsilon, method=method, engine="numpy")
        assert set(python.pair_tuples()) == set(numpy_.pair_tuples())


@given(
    rows_b=counter_matrices,
    rows_a=counter_matrices,
    epsilon=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_exact_methods_agree_and_reach_oracle(rows_b, rows_a, epsilon):
    b, a = make_couple(rows_b, rows_a)
    baseline = csj_similarity(
        b, a, epsilon=epsilon, method="ex-baseline", matcher="hopcroft_karp"
    )
    minmax = csj_similarity(
        b, a, epsilon=epsilon, method="ex-minmax", matcher="hopcroft_karp"
    )
    oracle = maximum_matching_size(
        brute_force_candidate_pairs(b.vectors, a.vectors, epsilon)
    )
    assert baseline.n_matched == minmax.n_matched == oracle


@given(
    rows_b=counter_matrices,
    rows_a=counter_matrices,
    epsilon=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_hybrid_agrees_with_exact_baseline(rows_b, rows_a, epsilon):
    b, a = make_couple(rows_b, rows_a)
    hybrid = csj_similarity(
        b, a, epsilon=epsilon, method="ex-hybrid", matcher="hopcroft_karp"
    )
    baseline = csj_similarity(
        b, a, epsilon=epsilon, method="ex-baseline", matcher="hopcroft_karp"
    )
    assert hybrid.n_matched == baseline.n_matched
    assert_valid_matching(hybrid.pair_tuples(), b.vectors, a.vectors, epsilon)


@given(rows=counter_matrices, epsilon=st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_self_join_is_full_similarity(rows, epsilon):
    vectors = np.array(rows, dtype=np.int64)
    b = Community("B", vectors)
    a = Community("A", vectors)
    result = csj_similarity(b, a, epsilon=epsilon, method="ex-minmax")
    # Every user matches at least itself, so a perfect matching exists.
    assert result.similarity == 1.0


# ----------------------------------------------------------------------
# epsilon-boundary flips under deltas (the classic off-by-one surface)
# ----------------------------------------------------------------------


@given(
    base=st.integers(min_value=0, max_value=20),
    epsilon=st.integers(min_value=0, max_value=4),
    pad=st.integers(min_value=0, max_value=5),
    touch_first=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_delta_flips_epsilon_boundary_identically_to_full_join(
    base, epsilon, pad, touch_first
):
    """Deltas landing exactly on/off ``|a - b| == eps`` flip identically.

    Start with a pair exactly ``eps + 1`` apart on one dimension (just
    outside), step the lower counter by 1 so the gap becomes exactly
    ``eps`` (on the boundary: MUST match), then overshoot past the far
    side until the gap is ``eps + 1`` again (off the boundary: MUST NOT
    match).  After every step the delta path must agree byte-for-byte
    with a full recompute — ``<=`` vs ``<`` anywhere in the delta
    window arithmetic fails one of the three phases.
    """
    from repro.core import DeltaJoinMaintainer

    low = base
    high = base + epsilon + 1  # just outside the epsilon window
    first_mat = np.array([[low, pad]], dtype=np.int64)
    second_mat = np.array([[high, pad]], dtype=np.int64)
    if not touch_first:
        first_mat, second_mat = second_mat, first_mat
    side = "first" if touch_first else "second"
    moving = first_mat if touch_first else second_mat

    maintainer = DeltaJoinMaintainer(
        Community("first", first_mat.copy()),
        Community("second", second_mat.copy()),
        epsilon,
        enforce_size_ratio=False,
    )
    assert maintainer.n_matched == 0  # gap is eps + 1: outside

    # Walk the moving counter up one like at a time: the pair must be
    # matched exactly while |gap| <= eps and unmatched the step the gap
    # reaches eps + 1 on the far side.
    for step in range(1, 2 * (epsilon + 1) + 1):
        moving[0, 0] += 1
        maintainer.record_like(side, 0, 0, 1)
        gap = abs(int(first_mat[0, 0]) - int(second_mat[0, 0]))
        full = csj_similarity(
            Community("first", first_mat.copy()),
            Community("second", second_mat.copy()),
            epsilon=epsilon,
            method="ex-baseline",
            matcher="hopcroft_karp",
        )
        expected = 1 if gap <= epsilon else 0
        assert maintainer.n_matched == full.n_matched == expected, (
            step,
            gap,
            epsilon,
        )
        assert maintainer.similarity == full.similarity
        assert maintainer.events.as_dict() == full.events.as_dict()
