"""Cross-method invariants over all six CSJ solutions.

These tests encode the relationships the paper's tables exhibit:
Ex-Baseline and Ex-MinMax always agree; approximate methods never beat
the exact maximum; SuperEGO in normalised mode never beats the true
exact methods; every engine pair returns the same matching.
"""

from __future__ import annotations

import pytest

from repro import ALL_METHODS, csj_similarity, get_algorithm
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)


def couple(seed: int) -> tuple[Community, Community]:
    vectors_b, vectors_a = random_couple(seed)
    return Community("B", vectors_b), Community("A", vectors_a)


class TestAllMethods:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_valid_one_to_one_matchings(self, method, seed):
        b, a = couple(seed)
        result = csj_similarity(b, a, epsilon=1, method=method)
        result.check_one_to_one()
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)
        assert 0.0 <= result.similarity <= 1.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("seed", [1, 5])
    def test_engines_agree(self, method, seed):
        b, a = couple(seed)
        python = csj_similarity(b, a, epsilon=1, method=method, engine="python")
        numpy_ = csj_similarity(b, a, epsilon=1, method=method, engine="numpy")
        assert set(python.pair_tuples()) == set(numpy_.pair_tuples())

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_bounded_by_maximum_matching(self, method):
        b, a = couple(17)
        result = csj_similarity(b, a, epsilon=1, method=method)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(b.vectors, a.vectors, 1)
        )
        assert result.n_matched <= oracle


class TestExactMethodAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_ex_baseline_equals_ex_minmax(self, seed):
        b, a = couple(seed + 200)
        baseline = csj_similarity(b, a, epsilon=1, method="ex-baseline")
        minmax = csj_similarity(b, a, epsilon=1, method="ex-minmax")
        assert set(baseline.pair_tuples()) == set(minmax.pair_tuples())

    @pytest.mark.parametrize("seed", range(5))
    def test_all_exact_agree_with_hopcroft_karp(self, seed):
        b, a = couple(seed + 300)
        counts = set()
        for method in ("ex-baseline", "ex-minmax"):
            result = csj_similarity(
                b, a, epsilon=1, method=method, matcher="hopcroft_karp"
            )
            counts.add(result.n_matched)
        superego = get_algorithm(
            "ex-superego", 1, matcher="hopcroft_karp", use_normalized=False, t=4
        ).join(b, a)
        counts.add(superego.n_matched)
        assert len(counts) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_dominates_approximate(self, seed):
        b, a = couple(seed + 400)
        exact = csj_similarity(
            b, a, epsilon=1, method="ex-minmax", matcher="hopcroft_karp"
        )
        for method in ("ap-baseline", "ap-minmax"):
            approx = csj_similarity(b, a, epsilon=1, method=method)
            assert approx.n_matched <= exact.n_matched

    @pytest.mark.parametrize("seed", range(5))
    def test_normalized_superego_never_beats_exact(self, seed):
        b, a = couple(seed + 500)
        exact = csj_similarity(
            b, a, epsilon=1, method="ex-minmax", matcher="hopcroft_karp"
        )
        for method in ("ap-superego", "ex-superego"):
            superego = get_algorithm(method, 1, t=4).join(b, a)
            assert superego.n_matched <= exact.n_matched


class TestRealisticGenerators:
    def test_vk_couple_shape(self, vk_mini_couple):
        b, a = vk_mini_couple
        exact = csj_similarity(b, a, epsilon=1, method="ex-minmax")
        approx = csj_similarity(b, a, epsilon=1, method="ap-minmax")
        superego = csj_similarity(b, a, epsilon=1, method="ex-superego")
        baseline = csj_similarity(b, a, epsilon=1, method="ex-baseline")
        assert exact.n_matched == baseline.n_matched
        assert approx.n_matched <= exact.n_matched
        assert superego.n_matched <= exact.n_matched
        # Engineered overlap (20.81%) must land within a loose band.
        assert 0.12 <= exact.similarity <= 0.30

    def test_synthetic_couple_exact_methods_identical(self, synthetic_mini_couple):
        b, a = synthetic_mini_couple
        results = {
            method: csj_similarity(b, a, epsilon=15000, method=method)
            for method in ("ex-baseline", "ex-minmax", "ex-superego")
        }
        counts = {result.n_matched for result in results.values()}
        # Table 8 shape: zero SuperEGO loss on the Synthetic dataset.
        assert len(counts) == 1

    def test_epsilon_zero_still_works(self, vk_mini_couple):
        b, a = vk_mini_couple
        for method in ALL_METHODS:
            result = csj_similarity(b, a, epsilon=0, method=method)
            assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 0)

    def test_large_epsilon_full_similarity(self, vk_mini_couple):
        b, a = vk_mini_couple
        huge = int(max(b.vectors.max(), a.vectors.max()))
        result = csj_similarity(b, a, epsilon=huge, method="ex-minmax")
        assert result.similarity == 1.0
