"""Tests for CSJResult (de)serialisation (to_dict / from_dict)."""

from __future__ import annotations

import json

import pytest

from repro import csj_similarity
from repro.core.errors import ValidationError
from repro.core.types import Community, CSJResult
from tests.conftest import random_couple


@pytest.fixture
def result() -> CSJResult:
    vectors_b, vectors_a = random_couple(123)
    return csj_similarity(
        Community("B", vectors_b), Community("A", vectors_a), epsilon=1,
        method="ex-minmax", engine="python",
    )


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, result):
        restored = CSJResult.from_dict(result.to_dict())
        assert restored.method == result.method
        assert restored.exact == result.exact
        assert restored.pair_tuples() == result.pair_tuples()
        assert restored.similarity == pytest.approx(result.similarity)
        assert restored.events.as_dict() == result.events.as_dict()
        assert restored.engine == result.engine

    def test_json_round_trip(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        restored = CSJResult.from_dict(payload)
        assert restored.n_matched == result.n_matched

    def test_to_dict_is_json_serialisable(self, result):
        json.dumps(result.to_dict())  # must not raise

    def test_minimal_payload(self):
        restored = CSJResult.from_dict(
            {
                "method": "ex-minmax",
                "exact": True,
                "size_b": 4,
                "size_a": 5,
                "epsilon": 1,
            }
        )
        assert restored.n_matched == 0
        assert restored.similarity == 0.0

    def test_similarity_consistency_enforced(self, result):
        payload = result.to_dict()
        payload["similarity"] = 0.987654
        with pytest.raises(ValidationError, match="disagrees"):
            CSJResult.from_dict(payload)

    def test_stored_similarity_matches(self, result):
        payload = result.to_dict()
        assert payload["similarity"] == pytest.approx(result.similarity)
