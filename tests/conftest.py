"""Shared fixtures for the CSJ test suite.

The heavy lifting (oracles, validators, structured random inputs) lives
in the public :mod:`repro.testing` module so downstream users get the
same tooling; this conftest only adapts signatures and adds fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Community
from repro.testing import (
    assert_valid_matching,
    banded_community_fleet,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_counter_couple,
    random_counter_matrix,
)

__all__ = [
    "assert_valid_matching",
    "banded_community_fleet",
    "brute_force_candidate_pairs",
    "maximum_matching_size",
    "random_couple",
    "random_counter_matrix",
]


def random_couple(
    seed: int, *, n_b: int = 18, n_a: int = 24, d: int = 6, high: int = 7
) -> tuple[np.ndarray, np.ndarray]:
    """Structured random couple (wrapper around repro.testing)."""
    return random_counter_couple(seed, n_b=n_b, n_a=n_a, n_dims=d, high=high)


@pytest.fixture
def small_couple() -> tuple[Community, Community]:
    """A deterministic small couple with a non-trivial candidate graph."""
    vectors_b, vectors_a = random_couple(seed=101)
    return Community("B", vectors_b), Community("A", vectors_a)


@pytest.fixture
def vk_mini_couple() -> tuple[Community, Community]:
    """A tiny VK-like couple from the real generator."""
    from repro.datasets import PAPER_COUPLES, VKGenerator, build_couple

    return build_couple(PAPER_COUPLES[0], VKGenerator(seed=5), scale=1 / 1024)


@pytest.fixture
def synthetic_mini_couple() -> tuple[Community, Community]:
    """A tiny Synthetic couple from the real generator."""
    from repro.datasets import PAPER_COUPLES, SyntheticGenerator, build_couple

    return build_couple(PAPER_COUPLES[0], SyntheticGenerator(seed=5), scale=1 / 1024)
