"""Tests for incremental community maintenance (repro.core.incremental)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import csj_similarity
from repro.core.errors import ValidationError
from repro.core.incremental import IncrementalCommunity


@pytest.fixture
def community() -> IncrementalCommunity:
    return IncrementalCommunity("Nike", 4, category="Sport", page_id=9)


class TestLifecycle:
    def test_starts_empty(self, community):
        assert community.n_users == 0
        assert community.version == 0
        assert community.user_ids() == []

    def test_subscribe_assigns_stable_ids(self, community):
        first = community.subscribe()
        second = community.subscribe([1, 2, 3, 4])
        assert (first, second) == (0, 1)
        assert community.n_users == 2
        assert np.array_equal(community.profile(1), [1, 2, 3, 4])

    def test_unsubscribe_keeps_id_reserved(self, community):
        first = community.subscribe()
        community.unsubscribe(first)
        third = community.subscribe()
        assert third == 1  # id 0 is never reused
        assert first not in community

    def test_unsubscribe_unknown_user(self, community):
        with pytest.raises(ValidationError, match="not subscribed"):
            community.unsubscribe(42)

    def test_version_bumps_on_every_mutation(self, community):
        user = community.subscribe()
        version_after_subscribe = community.version
        community.record_like(user, 0)
        assert community.version == version_after_subscribe + 1
        community.unsubscribe(user)
        assert community.version == version_after_subscribe + 2

    def test_initial_vectors(self):
        community = IncrementalCommunity(
            "X", 3, vectors=np.array([[1, 2, 3], [4, 5, 6]])
        )
        assert community.n_users == 2
        assert np.array_equal(community.profile(1), [4, 5, 6])

    def test_initial_vectors_dimension_mismatch(self):
        with pytest.raises(ValidationError, match="expected"):
            IncrementalCommunity("X", 5, vectors=np.ones((2, 3), dtype=np.int64))


class TestLikes:
    def test_record_like_increments(self, community):
        user = community.subscribe()
        community.record_like(user, 2)
        community.record_like(user, 2, count=4)
        assert community.profile(user)[2] == 5

    def test_zero_count_rejected(self, community):
        # A zero delta is a caller bug, not a no-op: the serving layer
        # logs every accepted like for delta replay, so silently
        # swallowing count=0 would desynchronise log and state.
        user = community.subscribe()
        version = community.version
        with pytest.raises(ValidationError, match=">= 1"):
            community.record_like(user, 0, count=0)
        assert community.version == version

    def test_negative_count_rejected(self, community):
        user = community.subscribe()
        version = community.version
        with pytest.raises(ValidationError, match=">= 1"):
            community.record_like(user, 0, count=-1)
        assert community.version == version

    def test_rejected_count_is_a_value_error(self, community):
        # The public contract promises plain ValueError semantics.
        user = community.subscribe()
        with pytest.raises(ValueError):
            community.record_like(user, 0, count=0)

    def test_dimension_out_of_range(self, community):
        user = community.subscribe()
        with pytest.raises(ValidationError, match="out of range"):
            community.record_like(user, 4)

    def test_profile_returns_copy(self, community):
        user = community.subscribe([1, 1, 1, 1])
        profile = community.profile(user)
        profile[0] = 99
        assert community.profile(user)[0] == 1


class TestSnapshot:
    def test_snapshot_row_order_follows_user_ids(self, community):
        community.subscribe([1, 0, 0, 0])
        middle = community.subscribe([2, 0, 0, 0])
        community.subscribe([3, 0, 0, 0])
        community.unsubscribe(middle)
        snapshot = community.snapshot()
        assert snapshot.n_users == 2
        assert snapshot.vectors[:, 0].tolist() == [1, 3]
        assert snapshot.category == "Sport"
        assert snapshot.page_id == 9

    def test_snapshot_is_independent_of_later_mutations(self, community):
        user = community.subscribe([1, 1, 1, 1])
        snapshot = community.snapshot()
        community.record_like(user, 0, count=10)
        assert snapshot.vectors[0, 0] == 1

    def test_empty_snapshot_rejected(self, community):
        with pytest.raises(ValidationError, match="no subscribers"):
            community.snapshot()

    def test_snapshot_custom_name(self, community):
        community.subscribe()
        assert community.snapshot(name="frozen").name == "frozen"

    def test_snapshots_joinable(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 30, size=(20, 4))
        left = IncrementalCommunity("L", 4, vectors=base)
        right = IncrementalCommunity("R", 4, vectors=base)
        # Drift one user in `right` beyond epsilon.
        right.record_like(0, 0, count=100)
        result = csj_similarity(
            left.snapshot(), right.snapshot(), epsilon=1, method="ex-minmax"
        )
        assert result.similarity == pytest.approx(19 / 20)
