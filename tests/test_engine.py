"""Tests for the batch execution engine (repro.engine)."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import top_k_pairs, top_k_pairs_reference
from repro.core.errors import (
    ConfigurationError,
    SizeRatioError,
    UnknownAlgorithmError,
)
from repro.core.types import Community
from repro.engine import (
    BatchEngine,
    Disposition,
    JoinResultCache,
    PairJob,
    canonical_options,
    decoded_options,
    community_envelope,
    community_fingerprint,
    envelopes_separated,
    join_key,
    matrix_fingerprint,
)
from repro.engine.shared import AttachedVectorStore, SharedVectorStore
from repro.obs import MetricsRegistry, summarize_records
from repro.testing import banded_community_fleet as banded_fleet
from repro.testing import brute_force_candidate_pairs


def all_pair_jobs(
    fleet: list[Community], method: str = "ex-minmax", epsilon: int = 2
) -> list[PairJob]:
    n = len(fleet)
    return [
        PairJob.build(i, j, method, epsilon)
        for i in range(n)
        for j in range(i + 1, n)
    ]


def comparable(outcomes) -> list[tuple]:
    """Result payloads without the timing fields."""
    rows = []
    for outcome in outcomes:
        result = outcome.result
        rows.append(
            (
                result.method,
                result.size_b,
                result.size_a,
                round(result.similarity, 12),
                tuple(result.pair_tuples()),
                result.swapped,
            )
        )
    return rows


class TestSerialParallelDeterminism:
    def test_identical_results_and_matchings(self):
        fleet = banded_fleet()
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, n_jobs=1) as serial_engine:
            serial = serial_engine.run(jobs)
        with BatchEngine(fleet, n_jobs=2) as parallel_engine:
            parallel = parallel_engine.run(jobs)
        assert comparable(serial) == comparable(parallel)
        assert [o.result.events.as_dict() for o in serial] == [
            o.result.events.as_dict() for o in parallel
        ]

    def test_parallel_pool_reuse_across_runs(self):
        fleet = banded_fleet(2, 3)
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, n_jobs=2) as engine:
            first = engine.run(jobs)
            second = engine.run(jobs)
        assert comparable(first) == comparable(second)

    def test_mixed_methods_in_one_batch(self):
        fleet = banded_fleet(2, 3)
        jobs = [
            PairJob.build(0, 1, "ap-minmax", 2),
            PairJob.build(0, 1, "ex-minmax", 2),
            PairJob.build(1, 2, "ex-baseline", 2),
        ]
        with BatchEngine(fleet, n_jobs=1) as serial_engine:
            serial = serial_engine.run(jobs)
        with BatchEngine(fleet, n_jobs=2) as parallel_engine:
            parallel = parallel_engine.run(jobs)
        assert comparable(serial) == comparable(parallel)
        assert [o.result.method for o in serial] == [
            "ap-minmax",
            "ex-minmax",
            "ex-baseline",
        ]


class TestEnvelopeScreen:
    def test_screened_pairs_have_zero_similarity_by_direct_join(self):
        fleet = banded_fleet()
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, n_jobs=1, screen=True) as engine:
            outcomes = engine.run(jobs)
        screened = [o for o in outcomes if o.disposition is Disposition.SCREENED]
        assert screened, "band structure should trigger the pre-screen"
        with BatchEngine(fleet, n_jobs=1, screen=False) as verifier:
            direct = verifier.run([o.job for o in screened])
        for screened_outcome, direct_outcome in zip(screened, direct):
            assert direct_outcome.result.similarity == 0.0
            assert direct_outcome.result.n_matched == 0
            assert screened_outcome.result.similarity == 0.0
            assert screened_outcome.result.pairs == []

    def test_screen_on_and_off_rank_identically(self):
        fleet = banded_fleet()
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, screen=True) as yes:
            with BatchEngine(fleet, screen=False) as no:
                similarities_yes = [o.result.similarity for o in yes.run(jobs)]
                similarities_no = [o.result.similarity for o in no.run(jobs)]
        assert similarities_yes == similarities_no

    def test_screen_respects_epsilon(self):
        close = Community("close", np.array([[0, 0], [1, 1]]))
        far = Community("far", np.array([[10, 10], [11, 11]]))
        env_close, env_far = community_envelope(close), community_envelope(far)
        assert envelopes_separated(env_close, env_far, epsilon=5)
        assert not envelopes_separated(env_close, env_far, epsilon=9)
        assert not envelopes_separated(env_close, env_close, epsilon=0)

    def test_screened_disposition_counted(self):
        fleet = banded_fleet(2, 2)
        jobs = all_pair_jobs(fleet)
        with BatchEngine(fleet, screen=True) as engine:
            outcomes = engine.run(jobs)
            screened = sum(
                1 for o in outcomes if o.disposition is Disposition.SCREENED
            )
            assert engine.stats()["screened"] == screened == 4  # cross-band pairs


class TestJoinResultCache:
    def test_hit_miss_accounting(self):
        fleet = banded_fleet(1, 4)
        jobs = all_pair_jobs(fleet)
        cache = JoinResultCache(max_entries=64)
        with BatchEngine(fleet, cache=cache, screen=False) as engine:
            cold = engine.run(jobs)
            assert cache.misses == len(jobs)
            assert cache.hits == 0
            warm = engine.run(jobs)
            assert cache.hits == len(jobs)
            assert cache.misses == len(jobs)
        assert comparable(cold) == comparable(warm)
        assert all(o.disposition is Disposition.CACHED for o in warm)
        assert 0.0 < cache.hit_rate < 1.0

    def test_cache_shared_across_engines_and_content_addressed(self):
        rng = np.random.default_rng(11)
        vectors = rng.integers(0, 6, size=(16, 4))
        cache = JoinResultCache()
        first_fleet = [Community("x", vectors), Community("y", vectors + 1)]
        # Same matrices under different names: content addressing hits.
        second_fleet = [Community("p", vectors.copy()), Community("q", vectors + 1)]
        job = PairJob.build(0, 1, "ex-minmax", 1)
        with BatchEngine(first_fleet, cache=cache) as engine:
            engine.run([job])
        with BatchEngine(second_fleet, cache=cache) as engine:
            outcome = engine.run([job])[0]
        assert outcome.disposition is Disposition.CACHED
        assert cache.hits == 1

    def test_cached_swap_flag_tracks_job_order(self):
        rng = np.random.default_rng(12)
        small = Community("small", rng.integers(0, 6, size=(12, 4)))
        large = Community("large", rng.integers(0, 6, size=(16, 4)))
        cache = JoinResultCache()
        with BatchEngine([small, large], cache=cache, screen=False) as engine:
            forward = engine.run([PairJob.build(0, 1, "ex-minmax", 1)])[0]
            reverse = engine.run([PairJob.build(1, 0, "ex-minmax", 1)])[0]
        assert reverse.disposition is Disposition.CACHED
        assert forward.result.swapped is False
        assert reverse.result.swapped is True
        assert forward.result.pair_tuples() == reverse.result.pair_tuples()

    def test_lru_eviction(self):
        cache = JoinResultCache(max_entries=2)
        fleet = banded_fleet(1, 4)
        jobs = all_pair_jobs(fleet)[:3]
        with BatchEngine(fleet, cache=cache, screen=False) as engine:
            engine.run(jobs)
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_distinct_configurations_do_not_collide(self):
        fleet = banded_fleet(1, 2)
        cache = JoinResultCache()
        with BatchEngine(fleet, cache=cache) as engine:
            engine.run([PairJob.build(0, 1, "ex-minmax", 1)])
            engine.run([PairJob.build(0, 1, "ex-minmax", 2)])
            engine.run([PairJob.build(0, 1, "ap-minmax", 1)])
            engine.run([PairJob.build(0, 1, "ex-minmax", 1, {"engine": "python"})])
        assert cache.hits == 0
        assert cache.misses == 4
        assert len(cache) == 4

    def test_clear_resets_entries_gauge(self):
        # Regression: clear() dropped the entries but left the occupancy
        # gauge at its pre-clear value until the next put().
        metrics = MetricsRegistry()
        cache = JoinResultCache(metrics=metrics)
        fleet = banded_fleet(1, 2)
        with BatchEngine(fleet, cache=cache, screen=False) as engine:
            engine.run([PairJob.build(0, 1, "ex-minmax", 1)])
        assert metrics.snapshot()["gauges"]["repro_engine_cache_entries"] == 1.0
        cache.clear()
        assert len(cache) == 0
        assert metrics.snapshot()["gauges"]["repro_engine_cache_entries"] == 0.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            JoinResultCache(max_entries=0)

    def test_int_cache_parameter_builds_cache(self):
        fleet = banded_fleet(1, 2)
        with BatchEngine(fleet, cache=8) as engine:
            engine.run([PairJob.build(0, 1, "ex-minmax", 1)])
            assert engine.cache is not None
            assert engine.cache.max_entries == 8


class TestFingerprints:
    def test_stable_across_processes(self):
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 9, size=(20, 6)).astype(np.int64)
        local = matrix_fingerprint(matrix)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(matrix_fingerprint, matrix).result()
        assert local == remote

    def test_name_independent(self):
        rng = np.random.default_rng(6)
        vectors = rng.integers(0, 9, size=(10, 3))
        assert community_fingerprint(
            Community("first-name", vectors)
        ) == community_fingerprint(Community("other-name", vectors.copy()))

    def test_content_sensitive(self):
        rng = np.random.default_rng(7)
        vectors = rng.integers(0, 9, size=(10, 3))
        changed = vectors.copy()
        changed[0, 0] += 1
        assert community_fingerprint(
            Community("c", vectors)
        ) != community_fingerprint(Community("c", changed))

    def test_join_key_canonicalises_option_order(self):
        key_a = join_key("fb", "fa", 1, "ex-minmax", {"engine": "numpy", "matcher": "csf"})
        key_b = join_key("fb", "fa", 1, "ex-minmax", {"matcher": "csf", "engine": "numpy"})
        assert key_a == key_b
        assert canonical_options({"b": 2, "a": 1}) == (
            ("a", ("int", 1)),
            ("b", ("int", 2)),
        )

    def test_canonical_options_distinguish_equal_hashing_values(self):
        # bool is an int subclass and True == 1 == 1.0, so untagged
        # tuples aliased these configurations to one cache key — a join
        # run with {"flag": 1} could be served {"flag": True}'s result.
        variants = [True, 1, 1.0, "1"]
        keys = {canonical_options({"flag": value}) for value in variants}
        assert len(keys) == len(variants)

    def test_decoded_options_roundtrip(self):
        options = {"engine": "numpy", "t": 0.5, "n_parts": 4, "flag": True}
        assert decoded_options(canonical_options(options)) == options


class TestSharedStore:
    def test_roundtrip_through_shared_memory(self):
        fleet = banded_fleet(2, 2)
        store = SharedVectorStore(fleet)
        try:
            attached = AttachedVectorStore(store.layout)
            for index, community in enumerate(fleet):
                rebuilt = attached.community(index)
                assert rebuilt.name == community.name
                assert rebuilt.category == community.category
                assert np.array_equal(rebuilt.vectors, community.vectors)
                assert attached.community(index) is rebuilt  # memoised
        finally:
            store.close()

    def test_close_is_idempotent(self):
        store = SharedVectorStore(banded_fleet(1, 2))
        store.close()
        store.close()


class TestEngineErrors:
    def test_invalid_n_jobs(self):
        with pytest.raises(ConfigurationError):
            BatchEngine(banded_fleet(1, 2), n_jobs=0)

    def test_unknown_method(self):
        with BatchEngine(banded_fleet(1, 2)) as engine:
            with pytest.raises(UnknownAlgorithmError):
                engine.run([PairJob.build(0, 1, "no-such-method", 1)])

    def test_size_ratio_violation_raises_like_direct_join(self):
        rng = np.random.default_rng(8)
        tiny = Community("tiny", rng.integers(0, 5, size=(5, 3)))
        giant = Community("giant", rng.integers(0, 5, size=(50, 3)))
        with BatchEngine([tiny, giant]) as engine:
            with pytest.raises(SizeRatioError):
                engine.run([PairJob.build(0, 1, "ex-minmax", 1)])

    def test_ratio_enforcement_can_be_disabled(self):
        rng = np.random.default_rng(9)
        tiny = Community("tiny", rng.integers(0, 5, size=(5, 3)))
        giant = Community("giant", rng.integers(0, 5, size=(50, 3)))
        with BatchEngine([tiny, giant], enforce_size_ratio=False) as engine:
            outcome = engine.run([PairJob.build(0, 1, "ex-minmax", 1)])[0]
        assert outcome.result.size_b == 5


def ranking_key(scores) -> bytes:
    """Canonical byte serialisation of a top-k ranking."""
    return json.dumps(
        [
            {
                "name_b": score.name_b,
                "name_a": score.name_a,
                "similarity": repr(score.similarity),
                "matching": score.result.pair_tuples(),
            }
            for score in scores
        ],
        sort_keys=True,
    ).encode()


def nonzero(events: dict[str, int]) -> dict[str, int]:
    return {name: count for name, count in events.items() if count}


class TestTelemetryDifferential:
    """n_jobs=1, n_jobs=2 and the reference loop agree — results AND
    telemetry aggregates."""

    def test_rankings_byte_identical_across_all_paths(self):
        fleet = banded_fleet(2, 3)
        serial_metrics, parallel_metrics = MetricsRegistry(), MetricsRegistry()
        serial_records: list = []
        parallel_records: list = []
        reference = top_k_pairs_reference(fleet, epsilon=2, k=4)
        serial = top_k_pairs(
            fleet,
            epsilon=2,
            k=4,
            metrics=serial_metrics,
            telemetry=serial_records,
        )
        parallel = top_k_pairs(
            fleet,
            epsilon=2,
            k=4,
            n_jobs=2,
            metrics=parallel_metrics,
            telemetry=parallel_records,
        )
        expected = ranking_key(reference)
        assert ranking_key(serial) == expected
        assert ranking_key(parallel) == expected
        # Per returned pair, the engine's event counts equal the
        # reference loop's (the joins are deterministic end to end).
        for engine_score, reference_score in zip(serial, reference):
            assert (
                engine_score.result.events.as_dict()
                == reference_score.result.events.as_dict()
            )

    def test_per_event_type_counts_equal_serial_vs_parallel(self):
        fleet = banded_fleet(2, 3)
        jobs = all_pair_jobs(fleet)
        serial_metrics, parallel_metrics = MetricsRegistry(), MetricsRegistry()
        with BatchEngine(fleet, n_jobs=1, metrics=serial_metrics) as engine:
            serial = engine.run(jobs)
            serial_records = list(engine.telemetry)
        with BatchEngine(fleet, n_jobs=2, metrics=parallel_metrics) as engine:
            parallel = engine.run(jobs)
            parallel_records = list(engine.telemetry)
        assert comparable(serial) == comparable(parallel)
        # Registry event counters aggregate identically across fan-out.
        assert serial_metrics.counters_by_label(
            "repro_core_events_total", "type"
        ) == parallel_metrics.counters_by_label("repro_core_events_total", "type")
        # And so do the per-record telemetry aggregates.
        serial_summary = summarize_records(serial_records)
        parallel_summary = summarize_records(parallel_records)
        assert serial_summary.n_joins == parallel_summary.n_joins == len(jobs)
        assert nonzero(serial_summary.events) == nonzero(parallel_summary.events)
        assert serial_summary.dispositions == parallel_summary.dispositions
        assert serial_summary.matched_pairs == parallel_summary.matched_pairs

    def test_telemetry_event_totals_match_join_results(self):
        fleet = banded_fleet(2, 2)
        jobs = all_pair_jobs(fleet)
        metrics = MetricsRegistry()
        with BatchEngine(fleet, metrics=metrics) as engine:
            outcomes = engine.run(jobs)
            records = list(engine.telemetry)
        assert len(records) == len(jobs)
        expected: dict[str, int] = {}
        for outcome in outcomes:
            for name, count in outcome.result.events.as_dict().items():
                expected[name] = expected.get(name, 0) + count
        assert nonzero(summarize_records(records).events) == nonzero(expected)
        # Record-level fields mirror the outcome they were built from.
        for record, outcome in zip(records, outcomes):
            assert record.disposition == outcome.disposition.value
            assert record.similarity == outcome.result.similarity
            assert record.n_matched == outcome.result.n_matched
            assert record.events == outcome.result.events.as_dict()


class TestEnvelopeScreenFuzz:
    """Property: a SCREENED verdict is a *proof* of an empty candidate
    graph — confirmed against the brute-force oracle."""

    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        offset=st.integers(min_value=0, max_value=12),
        epsilon=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_screened_implies_empty_candidate_graph(self, seed, offset, epsilon):
        rng = np.random.default_rng(seed)
        vectors_b = rng.integers(0, 8, size=(6, 3)).astype(np.int64)
        vectors_a = (rng.integers(0, 8, size=(7, 3)) + offset).astype(np.int64)
        fleet = [Community("B", vectors_b), Community("A", vectors_a)]
        with BatchEngine(fleet, screen=True) as engine:
            outcome = engine.run([PairJob.build(0, 1, "ex-minmax", epsilon)])[0]
        if outcome.disposition is Disposition.SCREENED:
            assert (
                brute_force_candidate_pairs(vectors_b, vectors_a, epsilon) == set()
            )
            assert outcome.result.similarity == 0.0
            assert outcome.result.pairs == []
        elif not brute_force_candidate_pairs(vectors_b, vectors_a, epsilon):
            # Unscreened but genuinely empty: the join must agree.
            assert outcome.result.n_matched == 0


class TestTopKOnEngine:
    def test_matches_reference_serial(self):
        fleet = banded_fleet()
        reference = top_k_pairs_reference(fleet, epsilon=2, k=4)
        engine_scores = top_k_pairs(fleet, epsilon=2, k=4)
        assert [
            (s.name_b, s.name_a, round(s.similarity, 12)) for s in reference
        ] == [(s.name_b, s.name_a, round(s.similarity, 12)) for s in engine_scores]

    def test_matches_reference_parallel_and_cached(self):
        fleet = banded_fleet(2, 3)
        reference = top_k_pairs_reference(fleet, epsilon=2, k=3)
        cache = JoinResultCache()
        parallel = top_k_pairs(fleet, epsilon=2, k=3, n_jobs=2, cache=cache)
        warm = top_k_pairs(fleet, epsilon=2, k=3, cache=cache)
        expected = [(s.name_b, s.name_a, round(s.similarity, 12)) for s in reference]
        assert [(s.name_b, s.name_a, round(s.similarity, 12)) for s in parallel] == expected
        assert [(s.name_b, s.name_a, round(s.similarity, 12)) for s in warm] == expected
        assert cache.hits > 0
