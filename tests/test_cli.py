"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

TINY = ["--scale", "0.0005"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_commands_exist(self):
        parser = build_parser()
        for table in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11):
            args = parser.parse_args(
                [f"table{table}"]
                + ([] if table in (1, 2) else ["--scale", "0.001"])
            )
            assert args.command == f"table{table}"

    def test_couple_requires_cid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["couple"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1", "--users", "300"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Entertainment" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Quick Recipes" in capsys.readouterr().out

    def test_method_table(self, capsys):
        assert main(["table4", *TINY]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Ex-MinMax" in out

    def test_method_table_reference_mode(self, capsys):
        assert main(["table3", *TINY, "--reference"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_synthetic_table(self, capsys):
        assert main(["table8", *TINY]) == 0
        assert "SYNTHETIC" in capsys.readouterr().out

    def test_table11(self, capsys):
        assert (
            main(
                [
                    "table11",
                    *TINY,
                    "--categories",
                    "Job_search",
                    "--steps",
                    "1",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 11" in out
        assert "Job_search" in out

    def test_couple(self, capsys):
        assert main(["couple", "--cid", "1", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "cID 1" in out
        assert "ex-minmax" in out

    def test_sweep(self, capsys):
        assert (
            main(["sweep", "--cid", "1", "--scale", "0.001", "--epsilons", "0", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert "cID 1" in out

    def test_events(self, capsys):
        assert main(["events", "--cid", "1", "--scale", "0.0006"]) == 0
        out = capsys.readouterr().out
        assert "MIN PRUNE" in out
        assert "Ap-MinMax" in out

    def test_experiments(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        assert (
            main(
                [
                    "experiments",
                    "--scale",
                    "0.0005",
                    "--users",
                    "400",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Table 11" in text
        assert "Figure 1" in text

    def test_manifest_build_and_verify(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "manifest",
                    "build",
                    str(path),
                    "--scale",
                    "0.0004",
                    "--couples",
                    "1",
                ]
            )
            == 0
        )
        assert path.exists()
        assert main(["manifest", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_manifest_verify_detects_tampering(self, tmp_path, capsys):
        import json

        path = tmp_path / "manifest.json"
        main(["manifest", "build", str(path), "--scale", "0.0004", "--couples", "1"])
        payload = json.loads(path.read_text())
        payload["couples"][0]["digest_b"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert main(["manifest", "verify", str(path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_couple_hybrid_method(self, capsys):
        assert (
            main(
                ["couple", "--cid", "1", "--method", "ex-hybrid", "--scale", "0.001"]
            )
            == 0
        )
        assert "ex-hybrid" in capsys.readouterr().out

    def test_doctor(self, capsys):
        assert main(["doctor", "--cid", "1", "--scale", "0.0006"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "[PASS]" in out

    def test_couple_synthetic(self, capsys):
        assert (
            main(
                [
                    "couple",
                    "--cid",
                    "10",
                    "--dataset",
                    "synthetic",
                    "--scale",
                    "0.001",
                    "--method",
                    "ap-minmax",
                ]
            )
            == 0
        )
        assert "ap-minmax" in capsys.readouterr().out
