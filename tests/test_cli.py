"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

TINY = ["--scale", "0.0005"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_commands_exist(self):
        parser = build_parser()
        for table in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11):
            args = parser.parse_args(
                [f"table{table}"]
                + ([] if table in (1, 2) else ["--scale", "0.001"])
            )
            assert args.command == f"table{table}"

    def test_couple_requires_cid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["couple"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1", "--users", "300"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Entertainment" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Quick Recipes" in capsys.readouterr().out

    def test_method_table(self, capsys):
        assert main(["table4", *TINY]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Ex-MinMax" in out

    def test_method_table_reference_mode(self, capsys):
        assert main(["table3", *TINY, "--reference"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_synthetic_table(self, capsys):
        assert main(["table8", *TINY]) == 0
        assert "SYNTHETIC" in capsys.readouterr().out

    def test_table11(self, capsys):
        assert (
            main(
                [
                    "table11",
                    *TINY,
                    "--categories",
                    "Job_search",
                    "--steps",
                    "1",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 11" in out
        assert "Job_search" in out

    def test_couple(self, capsys):
        assert main(["couple", "--cid", "1", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "cID 1" in out
        assert "ex-minmax" in out

    def test_sweep(self, capsys):
        assert (
            main(["sweep", "--cid", "1", "--scale", "0.001", "--epsilons", "0", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert "cID 1" in out

    def test_events(self, capsys):
        assert main(["events", "--cid", "1", "--scale", "0.0006"]) == 0
        out = capsys.readouterr().out
        assert "MIN PRUNE" in out
        assert "Ap-MinMax" in out

    def test_experiments(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        assert (
            main(
                [
                    "experiments",
                    "--scale",
                    "0.0005",
                    "--users",
                    "400",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Table 11" in text
        assert "Figure 1" in text

    def test_manifest_build_and_verify(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "manifest",
                    "build",
                    str(path),
                    "--scale",
                    "0.0004",
                    "--couples",
                    "1",
                ]
            )
            == 0
        )
        assert path.exists()
        assert main(["manifest", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_manifest_verify_detects_tampering(self, tmp_path, capsys):
        import json

        path = tmp_path / "manifest.json"
        main(["manifest", "build", str(path), "--scale", "0.0004", "--couples", "1"])
        payload = json.loads(path.read_text())
        payload["couples"][0]["digest_b"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert main(["manifest", "verify", str(path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_couple_hybrid_method(self, capsys):
        assert (
            main(
                ["couple", "--cid", "1", "--method", "ex-hybrid", "--scale", "0.001"]
            )
            == 0
        )
        assert "ex-hybrid" in capsys.readouterr().out

    def test_doctor(self, capsys):
        assert main(["doctor", "--cid", "1", "--scale", "0.0006"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "[PASS]" in out

    def test_couple_synthetic(self, capsys):
        assert (
            main(
                [
                    "couple",
                    "--cid",
                    "10",
                    "--dataset",
                    "synthetic",
                    "--scale",
                    "0.001",
                    "--method",
                    "ap-minmax",
                ]
            )
            == 0
        )
        assert "ap-minmax" in capsys.readouterr().out


class TestTelemetryCLI:
    """The --telemetry/--telemetry-out surface and the stats command."""

    TOPK = ["topk", "--scale", "0.001", "--couples", "4", "--k", "3"]

    def _rebuild_topk_communities(self):
        """The exact community fleet the CLI topk invocation builds."""
        import dataclasses

        from repro.analysis.runner import make_generator
        from repro.datasets.couples import PAPER_COUPLES, build_couple

        generator = make_generator("vk", seed=7)
        communities = []
        for spec in PAPER_COUPLES[:4]:
            couple = build_couple(spec, generator, scale=0.001)
            for side, community in zip("BA", couple):
                communities.append(
                    dataclasses.replace(
                        community, name=f"c{spec.c_id}{side}:{community.name}"
                    )
                )
        return communities

    def test_topk_log_event_totals_match_join_results(self, tmp_path, capsys):
        from repro.apps import top_k_pairs
        from repro.obs import read_jsonl, summarize_records
        from repro.obs.registry import MetricsRegistry

        path = tmp_path / "topk.jsonl"
        assert main(self.TOPK + ["--telemetry-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"telemetry log written to {path}" in out
        assert "-- telemetry --" in out

        header, records, trailer = read_jsonl(path)
        assert header["command"] == "topk"
        assert trailer is not None and "metrics" in trailer
        logged = summarize_records(records)
        assert logged.n_joins == len(records) > 0

        # Differential check: an identical in-process run's JoinResult
        # event counts must match the log's per-event-type totals.
        direct_records: list = []
        top_k_pairs(
            self._rebuild_topk_communities(),
            epsilon=1,
            k=3,
            metrics=MetricsRegistry(),
            telemetry=direct_records,
        )
        direct = summarize_records(direct_records)
        assert logged.events == direct.events
        assert logged.dispositions == direct.dispositions
        assert logged.matched_pairs == direct.matched_pairs
        # Every record's events are exactly its JoinResult's counts, so
        # the totals in the summary trailer agree too.
        assert trailer["events"] == logged.events

    def test_topk_telemetry_flag_prints_summary(self, capsys):
        assert main(self.TOPK + ["--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry --" in out
        assert "dispositions:" in out

    def test_sweep_telemetry_out(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = tmp_path / "sweep.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--cid",
                    "1",
                    "--scale",
                    "0.001",
                    "--epsilons",
                    "0",
                    "1",
                    "--telemetry-out",
                    str(path),
                ]
            )
            == 0
        )
        header, records, _ = read_jsonl(path)
        assert header["command"] == "sweep" and header["cid"] == 1
        assert len(records) == 2
        assert [r.epsilon for r in records] == [0, 1]

    def test_table_telemetry_flag(self, capsys):
        assert main(["table3", "--scale", "0.001", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry --" in out
        assert "joins:" in out

    def test_stats_command(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(self.TOPK + ["--telemetry-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run: command=topk" in out
        assert "joins:" in out and "dispositions:" in out

    def test_stats_prometheus_dump(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(self.TOPK + ["--telemetry-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_jobs_total counter" in out
        assert "repro_core_events_total" in out
        # Every zero-init family is present even with no matching
        # traffic — regression for the dump covering sketch but not
        # delta counters.
        assert "repro_delta_refreshes_total 0" in out
        assert "repro_delta_evictions_total 0" in out
        assert "repro_sketch_pairs_checked_total 0" in out
