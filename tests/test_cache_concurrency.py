"""Concurrent-access regression tests for :class:`JoinResultCache`.

The similarity service shares one join-result cache between executor
threads, so ``get``/``put``/``clear`` race by design.  Before the cache
took a lock, the ``OrderedDict`` LRU reordering could corrupt the
structure mid-iteration and the hit/miss counters could lose updates;
these tests hammer the cache from many threads and assert structural
and accounting invariants afterwards.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.types import CSJResult
from repro.engine.cache import JoinResultCache, join_key
from repro.obs import MetricsRegistry

THREADS = 8
OPS_PER_THREAD = 400
KEYSPACE = 48
CAPACITY = 16  # far smaller than the keyspace, so evictions churn constantly


def _result(index: int) -> CSJResult:
    return CSJResult(
        method="Ex-MinMax",
        exact=True,
        size_b=4,
        size_a=4,
        epsilon=index % 3,
        pairs=[],
    )


def _key(index: int):
    return join_key(f"b{index:04d}", f"a{index:04d}", index % 3, "ex-minmax")


def _hammer(cache: JoinResultCache, seed: int) -> int:
    """Mixed get/put/clear traffic; returns the number of lookups made."""
    lookups = 0
    for step in range(OPS_PER_THREAD):
        index = (seed * 31 + step * 7) % KEYSPACE
        key = _key(index)
        if step % 3 == 0:
            cache.put(key, _result(index))
        else:
            hit = cache.get(key)
            lookups += 1
            if hit is not None:
                # A hit must rehydrate the exact payload that was stored.
                assert hit.epsilon == index % 3
        if seed == 0 and step % 97 == 0:
            cache.clear()
        if step % 11 == 0:
            len(cache)
            key in cache
            cache.stats()
    return lookups


def test_cache_survives_concurrent_mixed_traffic():
    cache = JoinResultCache(max_entries=CAPACITY)
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        lookups = sum(pool.map(_hammer, [cache] * THREADS, range(THREADS)))
    stats = cache.stats()
    assert stats["entries"] <= CAPACITY
    assert stats["hits"] + stats["misses"] == lookups
    # LRU structure must still behave: a fresh put is retrievable.
    probe = _key(KEYSPACE + 1)
    cache.put(probe, _result(0))
    assert cache.get(probe) is not None


def test_cache_counters_exact_under_contention():
    """With no evictions or clears, every lookup is hit or miss exactly once."""
    cache = JoinResultCache(max_entries=KEYSPACE * 2, metrics=MetricsRegistry())
    for index in range(KEYSPACE):
        cache.put(_key(index), _result(index))
    barrier = threading.Barrier(THREADS)

    def reader(seed: int) -> int:
        barrier.wait()
        done = 0
        for step in range(OPS_PER_THREAD):
            index = (seed + step) % (KEYSPACE * 2)  # half the probes miss
            cache.get(_key(index))
            done += 1
        return done

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        lookups = sum(pool.map(reader, range(THREADS)))
    assert cache.hits + cache.misses == lookups
    metrics = cache.metrics
    assert metrics.counter("repro_engine_cache_hits_total") == cache.hits
    assert metrics.counter("repro_engine_cache_misses_total") == cache.misses


def test_repr_is_a_consistent_snapshot():
    """``__repr__`` reads entries/hits/misses under the cache lock —
    regression for the torn-read RL008 finding; the rendered counters
    must agree with the cache's own fields."""
    cache = JoinResultCache(max_entries=CAPACITY)
    for index in range(4):
        key = join_key("a", f"b{index}", 1, "Ex-MinMax")
        assert cache.get(key) is None
        cache.put(key, _result(index))
    rendered = repr(cache)
    assert f"entries={len(cache)}/{CAPACITY}" in rendered
    assert f"hits={cache.hits}" in rendered
    assert f"misses={cache.misses}" in rendered
