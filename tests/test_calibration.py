"""Tests for the Eq. (1) p-factor calibration (repro.analysis.calibration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import csj_similarity
from repro.analysis import PCalibration, debias, estimate_p
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from tests.conftest import random_couple


def sample_couples(n: int, seed0: int = 700) -> list[tuple[Community, Community]]:
    couples = []
    for offset in range(n):
        vectors_b, vectors_a = random_couple(seed0 + offset)
        couples.append((Community("B", vectors_b), Community("A", vectors_a)))
    return couples


class TestEstimateP:
    def test_p_in_unit_interval(self):
        calibration = estimate_p("ap-minmax", sample_couples(5), epsilon=1)
        assert 0.0 < calibration.p <= 1.0
        assert calibration.n_samples == 5

    def test_exact_method_calibrates_to_one(self):
        # Calibrating Ex-MinMax+HK against itself must give exactly 1.
        calibration = estimate_p(
            "ex-minmax", sample_couples(4), epsilon=1, matcher="hopcroft_karp"
        )
        assert calibration.p == pytest.approx(1.0)

    def test_ratios_bounded_by_one(self):
        calibration = estimate_p("ap-baseline", sample_couples(6), epsilon=1)
        assert all(0.0 <= ratio <= 1.0 for ratio in calibration.sample_ratios)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            estimate_p("ap-minmax", [], epsilon=1)

    def test_spread_zero_for_single_sample(self):
        calibration = estimate_p("ap-minmax", sample_couples(1), epsilon=1)
        assert calibration.spread == 0.0

    def test_zero_match_couples_count_as_recovered(self):
        far_b = Community("B", np.zeros((5, 3), dtype=np.int64))
        far_a = Community("A", np.full((5, 3), 1000, dtype=np.int64))
        calibration = estimate_p("ap-minmax", [(far_b, far_a)], epsilon=1)
        assert calibration.p == 1.0


class TestDebias:
    def test_debias_scales_up(self):
        couples = sample_couples(3)
        calibration = estimate_p("ap-minmax", couples, epsilon=1)
        result = csj_similarity(*couples[0], epsilon=1, method="ap-minmax")
        corrected = debias(result, calibration)
        assert corrected >= result.similarity
        assert corrected <= 1.0

    def test_method_mismatch_rejected(self):
        couples = sample_couples(2)
        calibration = estimate_p("ap-minmax", couples, epsilon=1)
        result = csj_similarity(*couples[0], epsilon=1, method="ap-baseline")
        with pytest.raises(ConfigurationError, match="calibration is for"):
            debias(result, calibration)

    def test_invalid_p_rejected(self):
        couples = sample_couples(1)
        result = csj_similarity(*couples[0], epsilon=1, method="ap-minmax")
        broken = PCalibration(
            method="ap-minmax",
            reference_method="ex-minmax",
            epsilon=1,
            p=0.0,
            sample_ratios=(0.0,),
        )
        with pytest.raises(ConfigurationError, match="positive"):
            debias(result, broken)
