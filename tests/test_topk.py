"""Tests for the top-k community pair operator (repro.apps.topk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import top_k_pairs
from repro.core.errors import ConfigurationError
from repro.core.types import Community


def community_family(seed: int = 0) -> list[Community]:
    """Four communities with a controlled overlap hierarchy."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 50, size=(80, 5))

    def variant(name: str, keep: float, shift: int) -> Community:
        n_keep = int(keep * len(base))
        kept = np.maximum(base[:n_keep] + rng.integers(-1, 2, size=(n_keep, 5)), 0)
        fresh = rng.integers(500 + shift, 600 + shift, size=(len(base) - n_keep, 5))
        return Community(name, np.concatenate([kept, fresh]))

    return [
        Community("base", base),
        variant("close", 0.7, 0),
        variant("mid", 0.4, 1000),
        variant("far", 0.1, 2000),
    ]


class TestTopK:
    def test_orders_by_similarity(self):
        communities = community_family()
        scores = top_k_pairs(communities, epsilon=1, k=3)
        assert len(scores) == 3
        similarities = [score.similarity for score in scores]
        assert similarities == sorted(similarities, reverse=True)
        top_pair = {scores[0].name_b, scores[0].name_a}
        assert top_pair == {"base", "close"}

    def test_k_one(self):
        communities = community_family()
        scores = top_k_pairs(communities, epsilon=1, k=1)
        assert len(scores) == 1

    def test_k_larger_than_pair_count(self):
        communities = community_family()[:2]
        scores = top_k_pairs(communities, epsilon=1, k=10)
        assert len(scores) == 1  # only one joinable pair exists

    def test_refined_results_are_exact(self):
        communities = community_family()
        scores = top_k_pairs(communities, epsilon=1, k=2)
        for score in scores:
            assert score.result.exact
            assert score.result.method == "ex-minmax"

    def test_size_ratio_pairs_skipped(self):
        rng = np.random.default_rng(1)
        small = Community("small", rng.integers(0, 9, size=(10, 3)))
        giant = Community("giant", rng.integers(0, 9, size=(100, 3)))
        scores = top_k_pairs([small, giant], epsilon=1, k=5)
        assert scores == []

    def test_duplicate_names_rejected(self):
        rng = np.random.default_rng(2)
        twin = Community("twin", rng.integers(0, 9, size=(10, 3)))
        with pytest.raises(ConfigurationError, match="unique"):
            top_k_pairs([twin, twin], epsilon=1, k=1)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            top_k_pairs(community_family(), epsilon=1, k=0)

    def test_invalid_margin(self):
        with pytest.raises(ConfigurationError):
            top_k_pairs(community_family(), epsilon=1, k=1, screen_margin=0.0)

    def test_label(self):
        communities = community_family()
        score = top_k_pairs(communities, epsilon=1, k=1)[0]
        assert score.label.startswith("<")
        assert score.name_b in score.label
