"""Unit tests for the core data model (repro.core.types)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.types import (
    Community,
    CSJResult,
    EventCounts,
    MatchedPair,
    pairs_from_tuples,
)


class TestCommunity:
    def test_basic_construction(self):
        community = Community("Nike", np.arange(12).reshape(4, 3))
        assert community.n_users == 4
        assert community.n_dims == 3
        assert len(community) == 4

    def test_vectors_are_int64(self):
        community = Community("x", np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert community.vectors.dtype == np.int64

    def test_float_integers_accepted(self):
        community = Community("x", np.array([[1.0, 2.0]]))
        assert community.vectors.dtype == np.int64
        assert community.vectors[0, 1] == 2

    def test_non_integer_floats_rejected(self):
        with pytest.raises(ValidationError, match="integers"):
            Community("x", np.array([[1.5, 2.0]]))

    def test_negative_counters_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            Community("x", np.array([[1, -2]]))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValidationError, match="2-D"):
            Community("x", np.array([1, 2, 3]))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            Community("x", np.zeros((0, 3), dtype=np.int64))
        with pytest.raises(ValidationError, match="non-empty"):
            Community("x", np.zeros((3, 0), dtype=np.int64))

    def test_vectors_are_read_only(self):
        community = Community("x", np.ones((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            community.vectors[0, 0] = 5

    def test_subset(self):
        community = Community("x", np.arange(12).reshape(4, 3), category="Sport")
        subset = community.subset([0, 2])
        assert subset.n_users == 2
        assert subset.category == "Sport"
        assert np.array_equal(subset.vectors[1], community.vectors[2])

    def test_subset_custom_name(self):
        community = Community("x", np.ones((3, 2), dtype=np.int64))
        assert community.subset([1], name="slice").name == "slice"

    def test_list_input_accepted(self):
        community = Community("x", [[1, 2], [3, 4]])
        assert community.n_users == 2


class TestEventCounts:
    def test_defaults_are_zero(self):
        counts = EventCounts()
        assert counts.total == 0
        assert counts.comparisons == 0

    def test_addition(self):
        left = EventCounts(min_prune=1, match=2)
        right = EventCounts(no_match=3, match=1)
        combined = left + right
        assert combined.min_prune == 1
        assert combined.no_match == 3
        assert combined.match == 3
        assert combined.total == 7

    def test_comparisons_counts_full_checks_only(self):
        counts = EventCounts(min_prune=5, no_overlap=4, no_match=3, match=2)
        assert counts.comparisons == 5

    def test_as_dict_round_trip(self):
        counts = EventCounts(min_prune=1, max_prune=2, no_overlap=3, no_match=4, match=5)
        assert counts.as_dict() == {
            "min_prune": 1,
            "max_prune": 2,
            "no_overlap": 3,
            "no_match": 4,
            "match": 5,
        }


class TestCSJResult:
    def make_result(self, pairs, size_b=10, p=1.0):
        return CSJResult(
            method="ex-minmax",
            exact=True,
            size_b=size_b,
            size_a=12,
            epsilon=1,
            pairs=pairs_from_tuples(pairs),
            p=p,
        )

    def test_similarity_is_eq1(self):
        result = self.make_result([(0, 0), (1, 3)], size_b=10)
        assert result.similarity == pytest.approx(0.2)
        assert result.similarity_percent == pytest.approx(20.0)

    def test_p_factor_scales_similarity(self):
        result = self.make_result([(0, 0)], size_b=10, p=0.5)
        assert result.similarity == pytest.approx(0.05)

    def test_zero_size_b_is_zero_similarity(self):
        result = self.make_result([], size_b=0)
        assert result.similarity == 0.0

    def test_check_one_to_one_passes(self):
        self.make_result([(0, 0), (1, 1)]).check_one_to_one()

    def test_check_one_to_one_rejects_duplicate_b(self):
        with pytest.raises(ValidationError, match="one-to-one"):
            self.make_result([(0, 0), (0, 1)]).check_one_to_one()

    def test_check_one_to_one_rejects_duplicate_a(self):
        with pytest.raises(ValidationError, match="one-to-one"):
            self.make_result([(0, 1), (2, 1)]).check_one_to_one()

    def test_summary_mentions_method_and_similarity(self):
        summary = self.make_result([(0, 0)]).summary()
        assert "ex-minmax" in summary
        assert "10.00%" in summary

    def test_pair_tuples(self):
        result = self.make_result([(3, 4)])
        assert result.pair_tuples() == [(3, 4)]


class TestMatchedPair:
    def test_as_tuple(self):
        assert MatchedPair(2, 5).as_tuple() == (2, 5)

    def test_frozen(self):
        pair = MatchedPair(1, 2)
        with pytest.raises(AttributeError):
            pair.b_index = 9
