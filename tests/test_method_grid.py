"""Systematic grid: every method x engine x epsilon on oracle-checked data.

A single parametrised battery that sweeps the full configuration space
on small structured inputs and validates every combination against the
brute-force oracle — the safety net that catches regressions in any
corner of the method matrix.
"""

from __future__ import annotations

import pytest

from repro import csj_similarity, get_algorithm
from repro.algorithms import ALGORITHMS
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)

ALL_REGISTERED = tuple(sorted(ALGORITHMS))
EXACT_RAW = (
    ("ex-baseline", {}),
    ("ex-minmax", {}),
    ("ex-hybrid", {}),
    ("ex-superego", {"use_normalized": False, "t": 4}),
)


@pytest.fixture(scope="module")
def grid_couples():
    couples = {}
    for seed in (1001, 1002, 1003):
        vectors_b, vectors_a = random_couple(seed)
        couples[seed] = (Community("B", vectors_b), Community("A", vectors_a))
    return couples


class TestFullGrid:
    @pytest.mark.parametrize("seed", (1001, 1002, 1003))
    @pytest.mark.parametrize("epsilon", (0, 1, 2))
    @pytest.mark.parametrize("method", ALL_REGISTERED)
    def test_validity_and_bound(self, grid_couples, method, epsilon, seed):
        b, a = grid_couples[seed]
        result = csj_similarity(b, a, epsilon=epsilon, method=method)
        result.check_one_to_one()
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, epsilon)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(b.vectors, a.vectors, epsilon)
        )
        assert result.n_matched <= oracle

    @pytest.mark.parametrize("epsilon", (0, 1, 2))
    @pytest.mark.parametrize("method_and_options", EXACT_RAW)
    def test_exact_raw_methods_reach_oracle(
        self, grid_couples, method_and_options, epsilon
    ):
        method, options = method_and_options
        b, a = grid_couples[1001]
        result = get_algorithm(
            method, epsilon, matcher="hopcroft_karp", **options
        ).join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(b.vectors, a.vectors, epsilon)
        )
        assert result.n_matched == oracle

    @pytest.mark.parametrize("seed", (1001, 1003))
    @pytest.mark.parametrize("method", ALL_REGISTERED)
    def test_engines_agree_everywhere(self, grid_couples, method, seed):
        b, a = grid_couples[seed]
        python = csj_similarity(b, a, epsilon=1, method=method, engine="python")
        numpy_ = csj_similarity(b, a, epsilon=1, method=method, engine="numpy")
        assert set(python.pair_tuples()) == set(numpy_.pair_tuples())

    @pytest.mark.parametrize("method", ("ex-baseline", "ex-minmax", "ex-hybrid"))
    @pytest.mark.parametrize("matcher", ("csf", "hopcroft_karp"))
    def test_matcher_grid(self, grid_couples, method, matcher):
        b, a = grid_couples[1002]
        result = get_algorithm(method, 1, matcher=matcher).join(b, a)
        result.check_one_to_one()
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    @pytest.mark.parametrize("method", ALL_REGISTERED)
    def test_determinism(self, grid_couples, method):
        b, a = grid_couples[1001]
        first = csj_similarity(b, a, epsilon=1, method=method)
        second = csj_similarity(b, a, epsilon=1, method=method)
        assert first.pair_tuples() == second.pair_tuples()
