"""Tests for the SVG chart writer (repro.analysis.charts)."""

from __future__ import annotations

import pytest

from repro.analysis.charts import Series, bar_chart, line_chart, save_chart
from repro.core.errors import ConfigurationError


class TestSeries:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Series("x", ())


class TestLineChart:
    def make(self):
        return line_chart(
            [
                Series("ex-minmax", ((1.0, 0.1), (2.0, 0.3), (4.0, 1.2))),
                Series("ex-baseline", ((1.0, 0.2), (2.0, 0.9), (4.0, 3.8))),
            ],
            title="runtime vs size",
            x_label="size",
            y_label="seconds",
        )

    def test_is_valid_svg(self):
        svg = self.make()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_contains_series_and_labels(self):
        svg = self.make()
        assert "ex-minmax" in svg
        assert "runtime vs size" in svg
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 6

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ElementTree

        ElementTree.fromstring(self.make())

    def test_single_point_series(self):
        svg = line_chart([Series("dot", ((1.0, 1.0),))])
        assert "<circle" in svg

    def test_requires_series(self):
        with pytest.raises(ConfigurationError):
            line_chart([])


class TestBarChart:
    def test_bars_and_labels(self):
        svg = bar_chart(
            ["csf", "hk"], [10.0, 12.0], title="matched", y_label="pairs"
        )
        assert svg.count("<rect") >= 3  # background + 2 bars
        assert "csf" in svg
        assert "matched" in svg

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ElementTree

        ElementTree.fromstring(bar_chart(["a"], [1.0]))

    def test_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a", "b"], [1.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])


class TestSaveChart:
    def test_save_normalises_suffix(self, tmp_path):
        path = save_chart(tmp_path / "chart.txt", bar_chart(["a"], [1.0]))
        assert path.suffix == ".svg"
        assert path.read_text().startswith("<svg")

    def test_round_trip_with_sweep(self, tmp_path):
        from repro.analysis.charts import Series
        from repro.analysis.sweeps import epsilon_sweep
        from repro.core.types import Community
        from tests.conftest import random_couple

        vectors_b, vectors_a = random_couple(21)
        points = epsilon_sweep(
            Community("B", vectors_b),
            Community("A", vectors_a),
            epsilons=[0, 1, 2],
        )
        series = Series(
            "similarity",
            tuple((p.parameter, p.similarity_percent) for p in points),
        )
        path = save_chart(tmp_path / "sweep", line_chart([series]))
        assert path.exists()
