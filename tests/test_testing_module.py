"""Tests for the public testing utilities (repro.testing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import csj_similarity
from repro.core.errors import ValidationError
from repro.core.types import Community, CSJResult, pairs_from_tuples
from repro.testing import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_counter_couple,
    validate_result,
)


class TestBruteForce:
    def test_known_pairs(self):
        vectors_b = np.array([[0, 0], [5, 5]])
        vectors_a = np.array([[1, 1], [5, 4], [9, 9]])
        pairs = brute_force_candidate_pairs(vectors_b, vectors_a, epsilon=1)
        assert pairs == {(0, 0), (1, 1)}

    def test_epsilon_zero(self):
        vectors = np.array([[2, 3]])
        assert brute_force_candidate_pairs(vectors, vectors, 0) == {(0, 0)}


class TestMaximumMatchingSize:
    def test_empty(self):
        assert maximum_matching_size(set()) == 0

    def test_star_graph(self):
        assert maximum_matching_size({(0, 0), (1, 0), (2, 0)}) == 1

    def test_perfect(self):
        assert maximum_matching_size({(i, i) for i in range(5)}) == 5


class TestAssertValidMatching:
    def test_accepts_valid(self):
        vectors = np.array([[1, 1], [2, 2]])
        assert_valid_matching([(0, 0), (1, 1)], vectors, vectors, epsilon=0)

    def test_rejects_duplicate(self):
        vectors = np.array([[1, 1], [1, 1]])
        with pytest.raises(AssertionError, match="matched twice"):
            assert_valid_matching([(0, 0), (0, 1)], vectors, vectors, 1)

    def test_rejects_epsilon_violation(self):
        vectors_b = np.array([[0, 0]])
        vectors_a = np.array([[5, 5]])
        with pytest.raises(AssertionError, match="violates epsilon"):
            assert_valid_matching([(0, 0)], vectors_b, vectors_a, 1)


class TestValidateResult:
    def make_pair(self):
        vectors_b, vectors_a = random_counter_couple(2)
        return Community("B", vectors_b), Community("A", vectors_a)

    def test_real_result_passes(self):
        community_b, community_a = self.make_pair()
        result = csj_similarity(community_b, community_a, epsilon=1)
        validate_result(result, community_b, community_a)

    def test_detects_size_mismatch(self):
        community_b, community_a = self.make_pair()
        result = csj_similarity(community_b, community_a, epsilon=1)
        with pytest.raises(ValidationError, match="sizes"):
            validate_result(result, community_a, community_b)

    def test_detects_tampered_pairs(self):
        community_b, community_a = self.make_pair()
        tampered = CSJResult(
            method="fake",
            exact=True,
            size_b=community_b.n_users,
            size_a=community_a.n_users,
            epsilon=0,
            pairs=pairs_from_tuples([(0, community_a.n_users + 5)]),
        )
        with pytest.raises(ValidationError, match="out of range"):
            validate_result(tampered, community_b, community_a)


class TestRandomCounterCouple:
    def test_shapes(self):
        vectors_b, vectors_a = random_counter_couple(1, n_b=10, n_a=12, n_dims=4)
        assert vectors_b.shape == (10, 4)
        assert vectors_a.shape == (12, 4)

    def test_reproducible(self):
        first = random_counter_couple(9)
        second = random_counter_couple(9)
        assert np.array_equal(first[0], second[0])

    def test_produces_matching_ambiguity(self):
        vectors_b, vectors_a = random_counter_couple(5)
        pairs = brute_force_candidate_pairs(vectors_b, vectors_a, epsilon=1)
        # The near-duplicate structure must generate real candidates.
        assert len(pairs) >= 3
