"""Fault-tolerance suite: supervisor, fault injection, checkpoint resume.

The acceptance bar for supervised execution is *transparency*: a batch
run with an injected worker crash, an injected hang and a poison job
must complete with results pair-for-pair identical to the serial
reference, with only the retry / timeout / quarantine counters telling
the story.  The supervisor unit tests drive the scheduler directly with
hand-built futures (no process pool), so every transition — timeout →
retry → quarantine → degrade — is exercised deterministically.
"""

from __future__ import annotations

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro import ALL_METHODS
from repro.core.errors import ConfigurationError
from repro.engine import (
    BatchEngine,
    CheckpointLog,
    Disposition,
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    JobSupervisor,
    PairJob,
    QuarantineRecord,
)
from repro.engine.checkpoint import decode_join_key, encode_join_key
from repro.engine.faults import SupervisedTask, maybe_inject
from repro.obs import MetricsRegistry
from repro.testing import banded_community_fleet as banded_fleet

pytestmark = pytest.mark.faults

#: Fast-retry policy so the suite never sleeps noticeably.
FAST = dict(backoff_base=0.001, backoff_cap=0.002, jitter=0.0)


def strip_timings(result) -> dict:
    """A result payload without its wall-clock fields."""
    payload = result.to_dict()
    payload.pop("elapsed_seconds", None)
    payload.pop("stage_seconds", None)
    return payload


def event_counters(metrics: MetricsRegistry) -> dict:
    """Only the join-event counters (the retry double-count hazard)."""
    return {
        key: value
        for key, value in metrics.snapshot()["counters"].items()
        if key.startswith("repro_core_events_total")
        or key.startswith("repro_algo_joins_total")
    }


def fleet_and_jobs(n_communities: int = 4, epsilon: int = 2):
    fleet = banded_fleet(3, n_communities)
    jobs = [
        PairJob.build(i, i + 1, method, epsilon)
        for i, method in enumerate(("ex-minmax", "ap-minmax", "ex-baseline"))
    ]
    return fleet, jobs


def reference(fleet, jobs) -> tuple[list[dict], dict]:
    metrics = MetricsRegistry()
    with BatchEngine(fleet, metrics=metrics, screen=False) as engine:
        payloads = [strip_timings(o.result) for o in engine.run(jobs)]
    return payloads, event_counters(metrics)


class TestPolicyAndSpecValidation:
    def test_policy_defaults(self):
        policy = FaultPolicy()
        assert policy.timeout is None
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [{"timeout": 0.0}, {"timeout": -1.0}, {"retries": -1}, {"pool_resets": -1}],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(mode="explode", at=0)

    def test_backoff_grows_and_caps(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_cap=0.3, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.backoff_seconds(n, rng) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_backoff_jitter_is_seeded(self):
        policy = FaultPolicy(jitter=0.5)
        first = policy.backoff_seconds(1, np.random.default_rng(42))
        second = policy.backoff_seconds(1, np.random.default_rng(42))
        assert first == second

    def test_maybe_inject_targets_one_position_and_attempt(self):
        spec = FaultSpec(mode="raise", at=1, fail_attempts=1)
        maybe_inject(spec, 0, 1, in_process=True)  # wrong position: no-op
        maybe_inject(spec, 1, 2, in_process=True)  # attempt exhausted: no-op
        maybe_inject(None, 1, 1, in_process=True)  # no spec: no-op
        with pytest.raises(InjectedFault):
            maybe_inject(spec, 1, 1, in_process=True)

    def test_hang_and_kill_degrade_to_raise_in_process(self):
        for mode in ("hang", "kill"):
            with pytest.raises(InjectedFault):
                maybe_inject(FaultSpec(mode=mode, at=0), 0, 1, in_process=True)


class TestSupervisorInline:
    """The in-process path (``submit=None``): retries and quarantine."""

    def make(self, **kwargs):
        policy = FaultPolicy(**{**FAST, **kwargs})
        return JobSupervisor(policy)

    def run_inline_supervisor(self, supervisor, tasks, run_inline):
        return supervisor.run(
            tasks,
            workers=1,
            submit=None,
            run_inline=run_inline,
            reset_pool=lambda: pytest.fail("inline path must not reset a pool"),
        )

    def test_transient_failure_retries_to_success(self):
        supervisor = self.make(retries=2)
        attempts: list[int] = []

        def run_inline(task: SupervisedTask, attempt: int) -> str:
            attempts.append(attempt)
            if task.position == 0 and attempt == 1:
                raise RuntimeError("transient")
            return f"ok-{task.position}"

        report = self.run_inline_supervisor(
            supervisor, [SupervisedTask(0, None), SupervisedTask(1, None)], run_inline
        )
        assert report.results == {0: "ok-0", 1: "ok-1"}
        assert report.quarantined == []
        assert supervisor.retries_total == 1
        assert attempts == [1, 1, 2]  # task 0 fails, task 1 runs, task 0 retried

    def test_poison_job_quarantined_after_max_attempts(self):
        supervisor = self.make(retries=2)

        def run_inline(task: SupervisedTask, attempt: int) -> str:
            if task.position == 0:
                raise ValueError("poison")
            return "ok"

        report = self.run_inline_supervisor(
            supervisor, [SupervisedTask(0, None), SupervisedTask(1, None)], run_inline
        )
        assert report.results == {1: "ok"}
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert isinstance(record, QuarantineRecord)
        assert record.position == 0
        assert record.attempts == 3  # retries + 1
        assert "poison" in record.error
        assert supervisor.quarantined_total == 1
        assert supervisor.retries_total == 2

    def test_counters_mirrored_into_metrics(self):
        metrics = MetricsRegistry()
        supervisor = JobSupervisor(FaultPolicy(retries=1, **FAST), metrics=metrics)

        def run_inline(task: SupervisedTask, attempt: int) -> str:
            raise RuntimeError("always")

        self.run_inline_supervisor(supervisor, [SupervisedTask(0, None)], run_inline)
        counters = metrics.snapshot()["counters"]
        assert counters["repro_engine_retries_total"] == 1
        assert counters["repro_engine_quarantined_total"] == 1
        assert metrics.snapshot()["gauges"]["repro_engine_degraded"] == 0.0


def _hung_future() -> Future:
    """A future that is running and will never complete (uncancellable)."""
    future: Future = Future()
    future.set_running_or_notify_cancel()
    return future


def _done_future(value) -> Future:
    future: Future = Future()
    future.set_result(value)
    return future


def _broken_future() -> Future:
    future: Future = Future()
    future.set_exception(BrokenProcessPool("worker died"))
    return future


class TestSupervisorPoolPath:
    """Scheduler transitions driven with hand-built futures."""

    def test_timeout_then_retry_succeeds(self):
        supervisor = JobSupervisor(FaultPolicy(timeout=0.05, retries=1, **FAST))
        submissions: list[int] = []
        resets: list[int] = []

        def submit(task: SupervisedTask, attempt: int) -> Future:
            submissions.append(attempt)
            return _hung_future() if attempt == 1 else _done_future("recovered")

        report = supervisor.run(
            [SupervisedTask(0, None)],
            workers=2,
            submit=submit,
            run_inline=lambda task, attempt: pytest.fail("must stay on pool path"),
            reset_pool=lambda: resets.append(1),
        )
        assert report.results == {0: "recovered"}
        assert submissions == [1, 2]
        assert supervisor.timeouts_total == 1
        assert supervisor.retries_total == 1
        assert resets == [1]

    def test_timeout_exhaustion_quarantines(self):
        supervisor = JobSupervisor(FaultPolicy(timeout=0.05, retries=1, **FAST))
        report = supervisor.run(
            [SupervisedTask(0, None)],
            workers=2,
            submit=lambda task, attempt: _hung_future(),
            run_inline=lambda task, attempt: pytest.fail("must stay on pool path"),
            reset_pool=lambda: None,
        )
        assert report.results == {}
        assert [r.position for r in report.quarantined] == [0]
        assert "TimeoutError" in report.quarantined[0].error
        assert supervisor.timeouts_total == 2  # both attempts timed out

    def test_solo_crash_is_charged(self):
        supervisor = JobSupervisor(FaultPolicy(retries=0, **FAST))
        report = supervisor.run(
            [SupervisedTask(0, None)],
            workers=2,
            submit=lambda task, attempt: _broken_future(),
            run_inline=lambda task, attempt: pytest.fail("must stay on pool path"),
            reset_pool=lambda: None,
        )
        assert [r.position for r in report.quarantined] == [0]
        assert supervisor.quarantined_total == 1

    def test_group_crash_reruns_survivors_in_isolation(self):
        # Two futures die together: neither can be blamed, so both are
        # re-run solo (suspect isolation) and succeed — zero retries
        # charged, the pool reset is the only trace.
        supervisor = JobSupervisor(FaultPolicy(retries=0, **FAST))
        round_one = {0: _broken_future(), 1: _broken_future()}
        solo_submissions: list[int] = []

        def submit(task: SupervisedTask, attempt: int) -> Future:
            if task.position in round_one:
                future = round_one.pop(task.position)
                return future
            solo_submissions.append(task.position)
            return _done_future(f"ok-{task.position}")

        report = supervisor.run(
            [SupervisedTask(0, None), SupervisedTask(1, None)],
            workers=2,
            submit=submit,
            run_inline=lambda task, attempt: pytest.fail("must stay on pool path"),
            reset_pool=lambda: None,
        )
        assert report.results == {0: "ok-0", 1: "ok-1"}
        assert report.quarantined == []
        assert supervisor.retries_total == 0  # bystanders are never charged
        assert supervisor.pool_resets == 1
        assert sorted(solo_submissions) == [0, 1]

    def test_degrades_to_inline_after_pool_reset_budget(self):
        metrics = MetricsRegistry()
        supervisor = JobSupervisor(
            FaultPolicy(timeout=0.05, retries=3, pool_resets=0, **FAST),
            metrics=metrics,
        )
        inline_ran: list[int] = []

        def run_inline(task: SupervisedTask, attempt: int) -> str:
            inline_ran.append(task.position)
            return f"inline-{task.position}"

        report = supervisor.run(
            [SupervisedTask(0, None), SupervisedTask(1, None)],
            workers=2,
            submit=lambda task, attempt: _hung_future(),
            run_inline=run_inline,
            reset_pool=lambda: None,
        )
        assert supervisor.degraded is True
        assert metrics.snapshot()["gauges"]["repro_engine_degraded"] == 1.0
        assert report.results == {0: "inline-0", 1: "inline-1"}
        assert sorted(inline_ran) == [0, 1]
        # A degraded supervisor never goes back to the pool.
        report2 = supervisor.run(
            [SupervisedTask(0, None)],
            workers=2,
            submit=lambda task, attempt: pytest.fail("degraded must not submit"),
            run_inline=run_inline,
            reset_pool=lambda: None,
        )
        assert report2.results == {0: "inline-0"}


class TestInjectedFaultsEndToEnd:
    """Injected crash / hang / raise batches match the serial reference."""

    def test_injected_raise_inline_matches_reference(self):
        fleet, jobs = fleet_and_jobs()
        ref, ref_events = reference(fleet, jobs)
        metrics = MetricsRegistry()
        with BatchEngine(
            fleet,
            screen=False,
            metrics=metrics,
            fault_policy=FaultPolicy(retries=2, **FAST),
            fault_injector=FaultSpec(mode="raise", at=1, fail_attempts=1),
        ) as engine:
            out = [strip_timings(o.result) for o in engine.run(jobs)]
            faults = engine.stats()["faults"]
        assert out == ref
        assert faults["retries"] == 1
        assert faults["quarantined"] == 0
        # The failed attempt's partial MATCH/NO_MATCH events were
        # discarded with it: totals equal the clean run exactly.
        assert event_counters(metrics) == ref_events

    def test_injected_worker_crash_matches_reference(self):
        fleet, jobs = fleet_and_jobs()
        ref, ref_events = reference(fleet, jobs)
        metrics = MetricsRegistry()
        with BatchEngine(
            fleet,
            n_jobs=2,
            screen=False,
            metrics=metrics,
            fault_policy=FaultPolicy(retries=2, **FAST),
            fault_injector=FaultSpec(mode="kill", at=0, fail_attempts=1),
        ) as engine:
            out = [strip_timings(o.result) for o in engine.run(jobs)]
            faults = engine.stats()["faults"]
        assert out == ref
        assert faults["pool_resets"] >= 1
        assert faults["quarantined"] == 0
        assert event_counters(metrics) == ref_events

    def test_injected_hang_times_out_and_matches_reference(self):
        fleet, jobs = fleet_and_jobs()
        ref, ref_events = reference(fleet, jobs)
        metrics = MetricsRegistry()
        with BatchEngine(
            fleet,
            n_jobs=2,
            screen=False,
            metrics=metrics,
            fault_policy=FaultPolicy(timeout=1.0, retries=2, **FAST),
            fault_injector=FaultSpec(
                mode="hang", at=0, fail_attempts=1, hang_seconds=30.0
            ),
        ) as engine:
            out = [strip_timings(o.result) for o in engine.run(jobs)]
            faults = engine.stats()["faults"]
        assert out == ref
        assert faults["timeouts"] == 1
        assert faults["retries"] == 1
        assert event_counters(metrics) == ref_events

    def test_poison_job_yields_failed_outcome_not_crashed_batch(self):
        fleet, jobs = fleet_and_jobs()
        ref, _ = reference(fleet, jobs)
        with BatchEngine(
            fleet,
            n_jobs=2,
            screen=False,
            fault_policy=FaultPolicy(retries=1, **FAST),
            fault_injector=FaultSpec(mode="raise", at=2, fail_attempts=99),
        ) as engine:
            outcomes = engine.run(jobs)
            faults = engine.stats()["faults"]
        assert outcomes[2].disposition is Disposition.FAILED
        assert "InjectedFault" in outcomes[2].error
        assert outcomes[2].result.engine == "quarantined"
        assert outcomes[2].result.n_matched == 0
        # The other jobs are untouched by their neighbour's poison.
        assert [strip_timings(o.result) for o in outcomes[:2]] == ref[:2]
        assert faults["quarantined"] == 1

    def test_every_method_survives_retry_with_identical_payloads(self):
        """The Ap-/Ex- bugfix audit: each method, faulted and retried,
        must reproduce its clean payload and event totals exactly."""
        fleet = banded_fleet(3, 2)
        jobs = [PairJob.build(0, 1, method, 2) for method in ALL_METHODS]
        ref, ref_events = reference(fleet, jobs)
        for position in range(len(jobs)):
            metrics = MetricsRegistry()
            with BatchEngine(
                fleet,
                screen=False,
                metrics=metrics,
                fault_policy=FaultPolicy(retries=1, **FAST),
                fault_injector=FaultSpec(mode="raise", at=position, fail_attempts=1),
            ) as engine:
                out = [strip_timings(o.result) for o in engine.run(jobs)]
            assert out == ref, f"retry diverged with fault at {ALL_METHODS[position]}"
            assert event_counters(metrics) == ref_events, (
                f"event counters diverged with fault at {ALL_METHODS[position]}"
            )


class TestCheckpointResume:
    def test_join_key_json_roundtrip(self):
        key = (
            "fb",
            "fa",
            3,
            "ex-minmax",
            (("engine", ("str", "numpy")), ("flag", ("bool", True))),
        )
        assert decode_join_key(json.loads(json.dumps(encode_join_key(key)))) == key

    def test_resume_recomputes_nothing(self, tmp_path):
        fleet, jobs = fleet_and_jobs()
        log_path = tmp_path / "sweep.ckpt.jsonl"
        with BatchEngine(fleet, screen=False, checkpoint=log_path) as engine:
            first = [o.result.to_dict() for o in engine.run(jobs)]
            assert engine.computed_count == len(jobs)
        metrics = MetricsRegistry()
        with BatchEngine(
            fleet, screen=False, checkpoint=log_path, metrics=metrics
        ) as engine:
            outcomes = engine.run(jobs)
            assert engine.resumed_count == len(jobs)
            assert engine.computed_count == 0
            assert engine.cached_count == len(jobs)
        assert all(o.disposition is Disposition.CACHED for o in outcomes)
        assert [o.result.to_dict() for o in outcomes] == first
        counters = metrics.snapshot()["counters"]
        assert "repro_engine_jobs_total{disposition=computed}" not in counters
        assert counters["repro_engine_jobs_total{disposition=cached}"] == len(jobs)

    def test_partial_log_resumes_only_missing_pairs(self, tmp_path):
        # Simulate a run killed after two of three joins: drop the last
        # checkpoint line, then resume — exactly one join recomputes.
        fleet, jobs = fleet_and_jobs()
        log_path = tmp_path / "killed.ckpt.jsonl"
        with BatchEngine(fleet, screen=False, checkpoint=log_path) as engine:
            reference_payloads = [o.result.to_dict() for o in engine.run(jobs)]
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[:-1]) + "\n")
        with BatchEngine(fleet, screen=False, checkpoint=log_path) as engine:
            outcomes = engine.run(jobs)
            assert engine.computed_count == 1
            assert engine.cached_count == 2
        for outcome, payload in zip(outcomes, reference_payloads):
            got = outcome.result.to_dict()
            expected = dict(payload)
            for timing_field in ("elapsed_seconds", "stage_seconds"):
                got.pop(timing_field, None)
                expected.pop(timing_field, None)
            assert got == expected
        # The resumed run extended the same log back to complete.
        with CheckpointLog(log_path) as log:
            assert len(log.load()) == len(jobs)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        fleet, jobs = fleet_and_jobs()
        log_path = tmp_path / "torn.ckpt.jsonl"
        with BatchEngine(fleet, screen=False, checkpoint=log_path) as engine:
            engine.run(jobs)
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "join-checkpoint", "key": [trunc')
        with CheckpointLog(log_path) as log:
            assert len(log.load()) == len(jobs)

    def test_checkpoint_content_addressing_survives_regeneration(self, tmp_path):
        # A resumed sweep typically regenerates its datasets; identical
        # content must still hit the checkpoint.
        log_path = tmp_path / "regen.ckpt.jsonl"
        fleet, jobs = fleet_and_jobs()
        with BatchEngine(fleet, screen=False, checkpoint=log_path) as engine:
            engine.run(jobs)
        regenerated, _ = fleet_and_jobs()
        with BatchEngine(regenerated, screen=False, checkpoint=log_path) as engine:
            engine.run(jobs)
            assert engine.computed_count == 0


class TestSweepAndTopkWiring:
    def test_epsilon_sweep_resumes_from_checkpoint(self, tmp_path):
        from repro.analysis.sweeps import epsilon_sweep

        fleet = banded_fleet(3, 2)
        log_path = tmp_path / "eps.ckpt.jsonl"
        first = epsilon_sweep(
            fleet[0], fleet[1], [1, 2, 4], checkpoint=log_path
        )
        metrics = MetricsRegistry()
        second = epsilon_sweep(
            fleet[0], fleet[1], [1, 2, 4], checkpoint=log_path, metrics=metrics
        )
        assert [p.similarity_percent for p in first] == [
            p.similarity_percent for p in second
        ]
        counters = metrics.snapshot()["counters"]
        assert "repro_engine_jobs_total{disposition=computed}" not in counters

    def test_top_k_pairs_supervised_matches_unsupervised(self):
        from repro.apps import top_k_pairs

        fleet = banded_fleet(2, 6)
        plain = top_k_pairs(fleet, epsilon=2, k=3)
        supervised = top_k_pairs(
            fleet,
            epsilon=2,
            k=3,
            fault_policy=FaultPolicy(retries=1, **FAST),
        )
        assert [(s.label, s.similarity) for s in plain] == [
            (s.label, s.similarity) for s in supervised
        ]

    def test_cli_flags_build_fault_kwargs(self):
        from repro.cli import _engine_kwargs, build_parser

        args = build_parser().parse_args(
            [
                "sweep",
                "--timeout", "5",
                "--retries", "1",
                "--resume-from", "ckpt.jsonl",
            ]
        )
        kwargs = _engine_kwargs(args)
        assert kwargs["fault_policy"] == FaultPolicy(timeout=5.0, retries=1)
        assert kwargs["checkpoint"] == "ckpt.jsonl"

    def test_cli_flags_default_to_unsupervised(self):
        from repro.cli import _engine_kwargs, build_parser

        args = build_parser().parse_args(["sweep"])
        kwargs = _engine_kwargs(args)
        assert "fault_policy" not in kwargs
        assert "checkpoint" not in kwargs
