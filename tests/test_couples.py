"""Tests for the couple registry and couple construction."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.datasets import (
    DIFFERENT_CATEGORY_COUPLES,
    PAPER_COUPLES,
    SAME_CATEGORY_COUPLES,
    SCALABILITY_SIZES,
    SyntheticGenerator,
    VKGenerator,
    build_couple,
    couples_for_table,
    scale_size,
)


class TestCoupleRegistry:
    def test_twenty_couples(self):
        assert len(PAPER_COUPLES) == 20
        assert [spec.c_id for spec in PAPER_COUPLES] == list(range(1, 21))

    def test_split_matches_case_studies(self):
        assert len(DIFFERENT_CATEGORY_COUPLES) == 10
        assert len(SAME_CATEGORY_COUPLES) == 10
        assert all(not spec.same_category for spec in DIFFERENT_CATEGORY_COUPLES)
        assert all(spec.same_category for spec in SAME_CATEGORY_COUPLES)

    def test_size_convention_b_not_larger(self):
        assert all(spec.size_b <= spec.size_a for spec in PAPER_COUPLES)

    def test_size_ratio_rule_holds_at_paper_scale(self):
        for spec in PAPER_COUPLES:
            assert spec.size_b >= math.ceil(spec.size_a / 2)

    def test_vk_target_bands(self):
        # Tables 4/6: >= 15% for different, >= 30% for same categories.
        for spec in DIFFERENT_CATEGORY_COUPLES:
            assert spec.target_similarity_vk >= 0.15
        for spec in SAME_CATEGORY_COUPLES:
            assert spec.target_similarity_vk >= 0.30

    def test_synthetic_edge_case_cid10(self):
        # Table 8 footnote: cID 10 drops below 15% on Synthetic.
        spec = next(s for s in PAPER_COUPLES if s.c_id == 10)
        assert spec.target_similarity_synthetic < 0.15

    def test_known_metadata_sample(self):
        spec = PAPER_COUPLES[0]
        assert spec.name_b == "Quick Recipes"
        assert spec.page_id_a == 94216909
        assert spec.category_a == "Food_recipes"
        assert spec.size_b == 109_176

    def test_couples_for_table(self):
        assert couples_for_table(3) == DIFFERENT_CATEGORY_COUPLES
        assert couples_for_table(6) == SAME_CATEGORY_COUPLES
        assert couples_for_table(9) == SAME_CATEGORY_COUPLES
        with pytest.raises(ConfigurationError):
            couples_for_table(11)

    def test_scalability_sizes_cover_20_categories(self):
        assert len(SCALABILITY_SIZES) == 20
        for sizes in SCALABILITY_SIZES.values():
            assert list(sizes) == sorted(sizes)


class TestScaleSize:
    def test_linear_scaling(self):
        assert scale_size(128_000, 1 / 64) == 2000

    def test_floor_applies(self):
        assert scale_size(100, 0.0001) == 40

    def test_identity_scale(self):
        assert scale_size(12345, 1.0) == 12345

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            scale_size(100, 0)


class TestBuildCouple:
    @pytest.mark.parametrize("generator_cls", [VKGenerator, SyntheticGenerator])
    def test_build_shapes_and_metadata(self, generator_cls):
        spec = PAPER_COUPLES[0]
        community_b, community_a = build_couple(
            spec, generator_cls(seed=1), scale=1 / 512
        )
        assert community_b.name == spec.name_b
        assert community_a.page_id == spec.page_id_a
        assert community_b.n_dims == 27
        assert len(community_b) == scale_size(spec.size_b, 1 / 512)
        assert len(community_b) <= len(community_a)

    def test_reproducible(self):
        spec = PAPER_COUPLES[4]
        import numpy as np

        first = build_couple(spec, VKGenerator(seed=3), scale=1 / 512)
        second = build_couple(spec, VKGenerator(seed=3), scale=1 / 512)
        assert np.array_equal(first[0].vectors, second[0].vectors)
        assert np.array_equal(first[1].vectors, second[1].vectors)

    def test_different_couples_decorrelated(self):
        import numpy as np

        generator = VKGenerator(seed=3)
        first = build_couple(PAPER_COUPLES[0], generator, scale=1 / 512)
        second = build_couple(PAPER_COUPLES[1], generator, scale=1 / 512)
        assert first[0].vectors.shape != second[0].vectors.shape or not np.array_equal(
            first[0].vectors, second[0].vectors
        )

    @pytest.mark.parametrize("c_id", [1, 11])
    def test_engineered_similarity_near_target_vk(self, c_id):
        from repro import csj_similarity

        spec = next(s for s in PAPER_COUPLES if s.c_id == c_id)
        community_b, community_a = build_couple(spec, VKGenerator(seed=7), scale=1 / 128)
        result = csj_similarity(community_b, community_a, epsilon=1, method="ex-minmax")
        assert result.similarity == pytest.approx(spec.target_similarity_vk, abs=0.04)

    @pytest.mark.parametrize("c_id", [10, 13])
    def test_engineered_similarity_near_target_synthetic(self, c_id):
        from repro import csj_similarity

        spec = next(s for s in PAPER_COUPLES if s.c_id == c_id)
        community_b, community_a = build_couple(
            spec, SyntheticGenerator(seed=7), scale=1 / 128
        )
        result = csj_similarity(
            community_b, community_a, epsilon=15000, method="ex-minmax"
        )
        assert result.similarity == pytest.approx(
            spec.target_similarity_synthetic, abs=0.04
        )
