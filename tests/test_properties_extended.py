"""Property-based tests for the extensions and maintenance substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import csj_similarity
from repro.core.incremental import IncrementalCommunity
from repro.core.types import Community
from repro.extensions import VectorEpsilonJoin

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

small_matrices = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.integers(min_value=2, max_value=5).flatmap(
        lambda d: st.lists(
            st.lists(st.integers(min_value=0, max_value=5), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
)


def as_couple(rows_b, rows_a):
    d = min(len(rows_b[0]), len(rows_a[0]))
    vectors_b = np.array([row[:d] for row in rows_b], dtype=np.int64)
    vectors_a = np.array([row[:d] for row in rows_a], dtype=np.int64)
    if len(vectors_b) > len(vectors_a):
        vectors_b, vectors_a = vectors_a, vectors_b
    vectors_a = vectors_a[: 2 * len(vectors_b)]
    return Community("B", vectors_b), Community("A", vectors_a)


# ----------------------------------------------------------------------
# vector-epsilon extension
# ----------------------------------------------------------------------


@given(rows_b=small_matrices, rows_a=small_matrices, epsilon=st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_uniform_vector_epsilon_equals_scalar(rows_b, rows_a, epsilon):
    b, a = as_couple(rows_b, rows_a)
    vector = VectorEpsilonJoin(
        [epsilon] * b.n_dims, matcher="hopcroft_karp"
    ).join(b, a)
    scalar = csj_similarity(
        b, a, epsilon=epsilon, method="ex-minmax", matcher="hopcroft_karp"
    )
    assert vector.n_matched == scalar.n_matched


@given(
    rows_b=small_matrices,
    rows_a=small_matrices,
    base=st.integers(0, 2),
    bumps=st.lists(st.integers(0, 3), min_size=5, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_vector_epsilon_pointwise_monotone(rows_b, rows_a, base, bumps):
    b, a = as_couple(rows_b, rows_a)
    d = b.n_dims
    tight = [base] * d
    loose = [base + bumps[i % len(bumps)] for i in range(d)]
    tight_result = VectorEpsilonJoin(tight, matcher="hopcroft_karp").join(b, a)
    loose_result = VectorEpsilonJoin(loose, matcher="hopcroft_karp").join(b, a)
    assert loose_result.n_matched >= tight_result.n_matched


@given(rows_b=small_matrices, rows_a=small_matrices)
@settings(max_examples=30, deadline=None)
def test_vector_epsilon_strategies_agree(rows_b, rows_a):
    b, a = as_couple(rows_b, rows_a)
    epsilons = [(i % 3) for i in range(b.n_dims)]
    encoded = VectorEpsilonJoin(epsilons, strategy="encoded").join(b, a)
    baseline = VectorEpsilonJoin(epsilons, strategy="baseline").join(b, a)
    assert set(encoded.pair_tuples()) == set(baseline.pair_tuples())


# ----------------------------------------------------------------------
# incremental maintenance
# ----------------------------------------------------------------------


@given(
    rows=small_matrices,
    likes=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 4), st.integers(1, 5)),
        max_size=25,
    ),
)
@settings(max_examples=40, deadline=None)
def test_incremental_counters_only_grow(rows, likes):
    matrix = np.array(rows, dtype=np.int64)
    community = IncrementalCommunity("X", matrix.shape[1], vectors=matrix)
    before = community.snapshot().vectors
    for user, dim, count in likes:
        if user in community and dim < community.n_dims:
            community.record_like(user, dim, count=count)
    after = community.snapshot().vectors
    assert (after >= before).all()
    assert after.sum() >= before.sum()


@given(rows=small_matrices)
@settings(max_examples=30, deadline=None)
def test_incremental_snapshot_round_trip(rows):
    matrix = np.array(rows, dtype=np.int64)
    community = IncrementalCommunity("X", matrix.shape[1], vectors=matrix)
    snapshot = community.snapshot()
    assert np.array_equal(snapshot.vectors, matrix)
    # The snapshot is frozen: further mutation cannot leak into it.
    community.record_like(0, 0, count=3)
    assert np.array_equal(snapshot.vectors, matrix)


@given(rows=small_matrices, drop=st.integers(0, 7))
@settings(max_examples=30, deadline=None)
def test_incremental_unsubscribe_shrinks_snapshot(rows, drop):
    matrix = np.array(rows, dtype=np.int64)
    community = IncrementalCommunity("X", matrix.shape[1], vectors=matrix)
    if drop in community and community.n_users > 1:
        community.unsubscribe(drop)
        snapshot = community.snapshot()
        assert snapshot.n_users == len(matrix) - 1
