"""Tests for the experiment harness and table rendering."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_SIMILARITY,
    accuracy_ratio,
    compare_methods,
    dataset_for_table,
    epsilon_for_dataset,
    make_generator,
    methods_for_table,
    paper_similarity,
    render_method_table,
    render_method_table_with_reference,
    render_scalability_table,
    render_table1,
    render_table2,
    reproduction_delta,
    run_method_table,
    run_scalability,
    run_table1,
    speedup,
)
from repro.core.errors import ConfigurationError
from repro.core.types import CSJResult
from repro.datasets import PAPER_COUPLES, SyntheticGenerator, VKGenerator

TINY_SCALE = 1 / 2048


class TestTableConfiguration:
    def test_dataset_mapping(self):
        assert dataset_for_table(3) == "vk"
        assert dataset_for_table(6) == "vk"
        assert dataset_for_table(7) == "synthetic"
        assert dataset_for_table(10) == "synthetic"

    def test_invalid_table(self):
        with pytest.raises(ConfigurationError):
            dataset_for_table(12)

    def test_method_families(self):
        assert all(m.startswith("ap-") for m in methods_for_table(3))
        assert all(m.startswith("ex-") for m in methods_for_table(4))

    def test_epsilons(self):
        assert epsilon_for_dataset("vk") == 1
        assert epsilon_for_dataset("synthetic") == 15000
        with pytest.raises(ConfigurationError):
            epsilon_for_dataset("csv")

    def test_generator_factory(self):
        assert isinstance(make_generator("vk"), VKGenerator)
        assert isinstance(make_generator("synthetic"), SyntheticGenerator)


class TestRunMethodTable:
    @pytest.fixture(scope="class")
    def table4(self):
        return run_method_table(4, scale=TINY_SCALE, seed=7)

    def test_structure(self, table4):
        assert table4.table == 4
        assert table4.dataset == "vk"
        assert len(table4.rows) == 10
        assert table4.methods == methods_for_table(4)

    def test_every_cell_populated(self, table4):
        for row in table4.rows:
            for method in table4.methods:
                result = row.results[method]
                assert isinstance(result, CSJResult)
                assert result.elapsed_seconds >= 0

    def test_exact_methods_agree_per_row(self, table4):
        for row in table4.rows:
            assert row.similarity_percent("ex-baseline") == pytest.approx(
                row.similarity_percent("ex-minmax")
            )

    def test_superego_never_above_exact(self, table4):
        for row in table4.rows:
            assert (
                row.similarity_percent("ex-superego")
                <= row.similarity_percent("ex-minmax") + 1e-9
            )

    def test_subset_of_couples(self):
        run = run_method_table(
            3, scale=TINY_SCALE, couples=PAPER_COUPLES[:2], methods=("ap-minmax",)
        )
        assert len(run.rows) == 2
        assert run.methods == ("ap-minmax",)

    def test_telemetry_records_per_row(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        run = run_method_table(
            3,
            scale=TINY_SCALE,
            couples=PAPER_COUPLES[:3],
            methods=("ap-minmax", "ex-minmax"),
            metrics=metrics,
        )
        assert len(run.telemetry) == 6  # 3 couples x 2 methods
        for row in run.rows:
            assert [record.method for record in row.telemetry] == [
                "ap-minmax",
                "ex-minmax",
            ]
            for record in row.telemetry:
                assert record.disposition == "computed"
                assert record.size_b <= record.size_a
        assert metrics.counter("repro_algo_joins_total", method="ex-minmax", engine="numpy") == 3

    def test_render_runtime_layout(self, table4):
        rendered = render_method_table(table4)
        assert "Table 4" in rendered
        assert "Ex-MinMax" in rendered
        assert "%" in rendered
        assert "Restaurants | Food_recipes" in rendered

    def test_render_reference_layout(self, table4):
        rendered = render_method_table_with_reference(table4)
        assert "paper" in rendered
        # Paper value for cID 1 / ex-minmax is 20.81.
        assert "20.81" in rendered

    def test_csv_export(self, table4):
        from repro.analysis.tables import method_table_csv

        csv = method_table_csv(table4)
        lines = csv.splitlines()
        # header + 10 couples x 3 methods
        assert len(lines) == 1 + 30
        assert lines[0].startswith("table,dataset,epsilon")
        assert all(line.count(",") == lines[0].count(",") for line in lines)

    def test_scalability_csv(self):
        from repro.analysis.tables import scalability_csv

        cells = run_scalability(
            scale=TINY_SCALE, categories=("Job_search",), steps=(1,)
        )
        csv = scalability_csv(cells, scale=TINY_SCALE)
        assert csv.splitlines()[0].startswith("scale,category")
        assert "Job_search" in csv


class TestScalability:
    def test_cells_and_rendering(self):
        cells = run_scalability(
            scale=TINY_SCALE, categories=("Job_search", "Medicine"), steps=(1, 2)
        )
        assert len(cells) == 4
        assert {cell.category for cell in cells} == {"Job_search", "Medicine"}
        rendered = render_scalability_table(cells, scale=TINY_SCALE)
        assert "Table 11" in rendered
        assert "Job_search" in rendered

    def test_sizes_grow_with_step(self):
        cells = run_scalability(
            scale=1 / 512, categories=("Sport",), steps=(1, 2, 3, 4)
        )
        sizes = [cell.average_size for cell in cells]
        assert sizes == sorted(sizes)


class TestTable1:
    def test_run_and_render(self):
        run = run_table1(n_users=800, seed=7)
        assert len(run.vk_ranking) == 27
        assert len(run.synthetic_ranking) == 27
        assert run.vk_ranking[0].category == "Entertainment"
        rendered = render_table1(run)
        assert "Table 1" in rendered
        assert "Entertainment" in rendered


class TestTable2:
    def test_render(self):
        rendered = render_table2()
        assert "Quick Recipes" in rendered
        assert "166850908" in rendered  # VK Pay page id
        assert rendered.count("\n") >= 21


class TestPaperReference:
    def test_all_method_tables_present(self):
        assert set(PAPER_SIMILARITY) == {3, 4, 5, 6, 7, 8, 9, 10}

    def test_each_table_has_ten_rows_of_three_methods(self):
        for table, rows in PAPER_SIMILARITY.items():
            assert len(rows) == 10
            for cells in rows.values():
                assert len(cells) == 3

    def test_lookup(self):
        assert paper_similarity(4, 1, "ex-minmax") == pytest.approx(20.81)
        assert paper_similarity(4, 1, "no-such") is None
        assert paper_similarity(99, 1, "ex-minmax") is None

    def test_exact_tables_on_synthetic_agree_across_methods(self):
        for rows in (PAPER_SIMILARITY[8], PAPER_SIMILARITY[10]):
            for cells in rows.values():
                assert len(set(cells.values())) == 1


class TestMetrics:
    def make_result(self, similarity_matched: int, elapsed: float) -> CSJResult:
        from repro.core.types import pairs_from_tuples

        return CSJResult(
            method="m",
            exact=True,
            size_b=100,
            size_a=120,
            epsilon=1,
            pairs=pairs_from_tuples([(i, i) for i in range(similarity_matched)]),
            elapsed_seconds=elapsed,
        )

    def test_accuracy_ratio(self):
        approx = self.make_result(18, 1.0)
        exact = self.make_result(20, 5.0)
        assert accuracy_ratio(approx, exact) == pytest.approx(0.9)

    def test_accuracy_ratio_zero_exact(self):
        assert accuracy_ratio(self.make_result(0, 1), self.make_result(0, 1)) == 1.0

    def test_speedup(self):
        fast = self.make_result(10, 1.0)
        slow = self.make_result(10, 4.0)
        assert speedup(fast, slow) == pytest.approx(4.0)

    def test_compare_methods(self):
        results = {
            "ex-baseline": self.make_result(20, 4.0),
            "ex-minmax": self.make_result(20, 1.0),
        }
        comparisons = compare_methods(
            results, exact_method="ex-minmax", baseline_method="ex-baseline"
        )
        by_name = {c.method: c for c in comparisons}
        assert by_name["ex-minmax"].speedup_vs_baseline == pytest.approx(4.0)
        assert by_name["ex-baseline"].accuracy_vs_exact == pytest.approx(1.0)

    def test_reproduction_delta(self):
        assert reproduction_delta(20.5, 20.0) == pytest.approx(0.5)
        assert reproduction_delta(20.5, None) is None
