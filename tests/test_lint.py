"""Tests for the ``repro.lint`` invariant checker.

Three layers:

* fixture tests — every rule has a ``bad`` fixture that must flag, a
  ``good`` fixture that must stay silent, and a ``suppressed`` fixture
  whose findings must land in ``report.suppressed`` instead of
  ``report.violations``;
* engine/CLI tests — suppression parsing, rule selection, report
  formats, exit codes;
* a meta-test asserting the live ``src/repro`` tree is lint-clean, so
  any future violation fails the suite even without the CI lint job.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.lint import LintReport, Violation, lint_paths
from repro.lint.analysis import AnalysisCache
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.diff import git_changed_lines, parse_unified_diff
from repro.lint.engine import PARSE_RULE, discover_files
from repro.lint.report import json_report, sarif_report, text_report
from repro.lint.rules import all_rules, rule_ids

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULE_IDS = (
    "RL001",
    "RL002",
    "RL003",
    "RL004",
    "RL005",
    "RL006",
    "RL007",
    "RL008",
    "RL009",
    "RL010",
    "RL011",
)

#: rule id -> (bad target, good target, suppressed target).  The
#: cross-file rules (RL006, RL009, RL010) use miniature project trees;
#: trees have no suppressed variant (the comment syntax is per-line and
#: already covered by the single-file rules).
FIXTURE_TARGETS = {
    "RL001": ("rl001_bad.py", "rl001_good.py", "rl001_suppressed.py"),
    "RL002": ("rl002_bad.py", "rl002_good.py", "rl002_suppressed.py"),
    "RL003": ("rl003_bad.py", "rl003_good.py", "rl003_suppressed.py"),
    "RL004": ("rl004_bad.py", "rl004_good.py", "rl004_suppressed.py"),
    "RL005": ("rl005_bad.py", "rl005_good.py", "rl005_suppressed.py"),
    "RL006": ("rl006_bad", "rl006_good", None),
    "RL007": ("rl007_bad.py", "rl007_good.py", "rl007_suppressed.py"),
    "RL008": ("rl008_bad.py", "rl008_good.py", "rl008_suppressed.py"),
    "RL009": ("rl009_bad", "rl009_good", None),
    "RL010": ("rl010_bad", "rl010_good", None),
    "RL011": ("rl011_bad.py", "rl011_good.py", "rl011_suppressed.py"),
}


def run_rule(rule_id: str, target: str) -> LintReport:
    return lint_paths([FIXTURES / target], select=[rule_id])


# ---------------------------------------------------------------------------
# fixture tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_bad_fixture_is_flagged(rule_id):
    bad, _, _ = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, bad)
    assert not report.ok
    assert report.violations, f"{rule_id} found nothing in {bad}"
    assert {v.rule_id for v in report.violations} == {rule_id}
    for violation in report.violations:
        assert violation.line >= 1
        assert violation.col >= 1
        assert violation.message


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    _, good, _ = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, good)
    assert report.ok, [v.format() for v in report.violations]
    assert not report.suppressed


@pytest.mark.parametrize(
    "rule_id",
    [rid for rid in ALL_RULE_IDS if FIXTURE_TARGETS[rid][2] is not None],
)
def test_suppressed_fixture_moves_findings_aside(rule_id):
    _, _, suppressed = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, suppressed)
    assert report.ok, [v.format() for v in report.violations]
    assert report.suppressed, f"{rule_id} suppression fixture flagged nothing"
    assert {v.rule_id for v in report.suppressed} == {rule_id}


def test_bad_fixture_violation_counts():
    """Pin the per-fixture finding counts so rules don't silently dull."""
    expected = {
        "RL001": 8,  # seed/randint/shuffle, 2x default_rng, 3x stdlib random
        "RL002": 5,  # lambda init, nested submit, lambda submit, self.*, partial
        "RL003": 5,  # counts assign, field bump, setattr, 2x metric mirror
        "RL004": 6,  # camelCase constant (def + use), no namespace, bad
        #              subsystem, missing _total, label drift
        "RL005": 3,  # bare except, silent Exception, silent BaseException tuple
        "RL006": 1,  # undocumented_thing missing from docs/api.md
        "RL007": 5,  # direct sleep, transitive sleep, with-lock, .acquire,
        #              BatchEngine construction — all inside async defs
        "RL008": 3,  # unlocked read, unlocked mutating call, unlocked write
        "RL009": 5,  # undispatched op, 2x missing client method,
        #              undocumented op, undeclared client op
        "RL010": 4,  # unregistered counter, dead counter, partial init
        #              site, undocumented metric
        "RL011": 3,  # dropped in function, dropped in method, literal seed
    }
    for rule_id, count in expected.items():
        bad, _, _ = FIXTURE_TARGETS[rule_id]
        report = run_rule(rule_id, bad)
        assert len(report.violations) == count, (
            rule_id,
            [v.format() for v in report.violations],
        )


def test_rl004_label_drift_points_at_minority_site():
    report = run_rule("RL004", "rl004_bad.py")
    drift = [v for v in report.violations if "label" in v.message.lower()]
    assert len(drift) == 1
    assert "kind" in drift[0].message


def test_rl003_good_fixture_absorb_is_sanctioned():
    """``absorb`` is the sink-preserving merge; it must never be flagged."""
    report = run_rule("RL003", "rl003_good.py")
    assert report.ok


def test_rules_only_fire_for_their_own_id():
    """Running every rule over one bad fixture flags only that rule."""
    for rule_id in ALL_RULE_IDS:
        bad, _, _ = FIXTURE_TARGETS[rule_id]
        report = lint_paths([FIXTURES / bad])
        assert {v.rule_id for v in report.violations} == {rule_id}, (
            rule_id,
            [v.format() for v in report.violations],
        )


# ---------------------------------------------------------------------------
# engine behaviour
# ---------------------------------------------------------------------------


def test_registry_exposes_all_eleven_rules():
    assert tuple(rule_ids()) == ALL_RULE_IDS
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == list(ALL_RULE_IDS)
    for rule in rules:
        assert rule.title
        assert rule.rationale


def test_select_and_ignore_filter_rules():
    bad = FIXTURES / "rl001_bad.py"
    assert lint_paths([bad], select=["RL005"]).ok
    assert lint_paths([bad], ignore=["RL001"]).ok
    assert not lint_paths([bad], select=["rl001"]).ok  # case-insensitive


def test_disable_all_suppresses_every_rule(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "import numpy as np\n"
        "x = np.random.randint(10)  # repro-lint: disable=all\n",
        encoding="utf-8",
    )
    report = lint_paths([src], select=["RL001"])
    assert report.ok
    assert len(report.suppressed) == 1


def test_suppression_comment_inside_string_is_inert(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        'TEXT = "# repro-lint: disable-file=RL001"\n'
        "import numpy as np\n"
        "x = np.random.randint(10)\n",
        encoding="utf-8",
    )
    report = lint_paths([src], select=["RL001"])
    assert not report.ok


def test_syntax_error_reports_parse_rule(tmp_path):
    src = tmp_path / "broken.py"
    src.write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([src])
    assert not report.ok
    assert report.violations[0].rule_id == PARSE_RULE


def test_discover_files_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text(
        "x = 1\n", encoding="utf-8"
    )
    found = discover_files([tmp_path])
    assert [p.name for p in found] == ["mod.py"]
    assert all("__pycache__" not in p.parts for p in found)


def test_violation_format_is_clickable():
    violation = Violation("RL001", "src/repro/x.py", 12, 5, "boom")
    assert violation.format() == "src/repro/x.py:12:5: RL001 boom"


# ---------------------------------------------------------------------------
# reporters and CLI
# ---------------------------------------------------------------------------


def test_text_report_summarises(tmp_path):
    report = lint_paths([FIXTURES / "rl005_bad.py"], select=["RL005"])
    text = text_report(report)
    assert "RL005" in text
    assert "rl005_bad.py" in text
    assert "checked 1 files: 3 violations (0 suppressed)" in text


def test_json_report_round_trips():
    report = lint_paths([FIXTURES / "rl001_bad.py"], select=["RL001"])
    payload = json.loads(json_report(report))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["violations"]
    first = payload["violations"][0]
    assert first["rule_id"] == "RL001"
    assert set(first) >= {"rule_id", "path", "line", "col", "message"}


def test_cli_exit_codes_and_output(capsys):
    bad = str(FIXTURES / "rl001_bad.py")
    good = str(FIXTURES / "rl001_good.py")
    assert lint_main([good, "--select", "RL001"]) == 0
    capsys.readouterr()
    assert lint_main([bad, "--select", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "rl001_bad.py" in out


def test_cli_json_format(capsys):
    bad = str(FIXTURES / "rl004_bad.py")
    assert lint_main([bad, "--select", "RL004", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert all(v["rule_id"] == "RL004" for v in payload["violations"])


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_show_suppressed(capsys):
    target = str(FIXTURES / "rl003_suppressed.py")
    assert lint_main([target, "--select", "RL003", "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    assert "RL003" in out
    assert "suppressed" in out


# ---------------------------------------------------------------------------
# graceful degradation (RL000)
# ---------------------------------------------------------------------------


def test_rl000_non_utf8_file_degrades_gracefully(tmp_path):
    """A non-UTF-8 file yields one RL000 finding; siblings still lint."""
    (tmp_path / "latin.py").write_bytes(b"# caf\xe9 au lait\nx = 1\n")
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    report = lint_paths([tmp_path])
    # the parsable sibling is still analysed and counted
    assert report.files_checked == 1
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule_id == PARSE_RULE
    assert violation.path.endswith("latin.py")
    assert "UTF-8" in violation.message


def test_rl000_null_byte_source_degrades_gracefully(tmp_path):
    """Null bytes decode fine but ast.parse rejects them: RL000, no crash."""
    (tmp_path / "nul.py").write_bytes(b"x = 1\x00\n")
    report = lint_paths([tmp_path])
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule_id == PARSE_RULE
    assert "null bytes" in violation.message


# ---------------------------------------------------------------------------
# analysis cache
# ---------------------------------------------------------------------------

_LOCKED_TRACKER = """\
import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def peek(self):
        with self._lock:
            return self.hits
"""

#: same class, but ``peek`` drops the lock — an RL008 violation.
_RACY_TRACKER = _LOCKED_TRACKER.replace(
    "    def peek(self):\n        with self._lock:\n            return self.hits\n",
    "    def peek(self):\n        return self.hits\n",
)


def test_analysis_cache_reuse_and_invalidation(tmp_path):
    assert _RACY_TRACKER != _LOCKED_TRACKER  # the replace above matched
    src = tmp_path / "m.py"
    src.write_text(_LOCKED_TRACKER, encoding="utf-8")
    cache = AnalysisCache()
    assert lint_paths([src], select=["RL008"], cache=cache).ok
    assert (cache.misses, cache.hits) == (1, 0)
    assert lint_paths([src], select=["RL008"], cache=cache).ok
    assert (cache.misses, cache.hits) == (1, 1)
    # Same path, new content: the stale analysis must not be reused.
    src.write_text(_RACY_TRACKER, encoding="utf-8")
    report = lint_paths([src], select=["RL008"], cache=cache)
    assert not report.ok, "cache served a stale analysis for edited content"
    assert (cache.misses, cache.hits) == (2, 1)


# ---------------------------------------------------------------------------
# diff-aware mode
# ---------------------------------------------------------------------------


def test_parse_unified_diff_tracks_new_side_lines():
    diff = (
        "diff --git a/pkg/m.py b/pkg/m.py\n"
        "--- a/pkg/m.py\n"
        "+++ b/pkg/m.py\n"
        "@@ -10,2 +10,3 @@\n"
        "-old\n"
        "+new one\n"
        "+new two\n"
        " context\n"
        "@@ -40 +42 @@\n"
        "-x\n"
        "+y\n"
        "--- a/gone.py\n"
        "+++ /dev/null\n"
        "@@ -1,3 +0,0 @@\n"
        "-a\n"
        "-b\n"
        "-c\n"
    )
    assert parse_unified_diff(diff) == {"pkg/m.py": {10, 11, 42}}


def test_changed_lines_filter_excludes_untouched_findings(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def f():\n"
        "    return np.random.default_rng()\n"  # line 5
        "\n"
        "\n"
        "def g():\n"
        "    return np.random.default_rng()\n",  # line 9
        encoding="utf-8",
    )
    full = lint_paths([src], select=["RL001"])
    assert sorted(v.line for v in full.violations) == [5, 9]
    filtered = lint_paths(
        [src],
        select=["RL001"],
        changed_lines={src.resolve().as_posix(): {9}},
    )
    assert [v.line for v in filtered.violations] == [9]


def test_cli_changed_only_bad_ref_fails_loudly(capsys):
    """A ref git cannot resolve must exit 2, not lint nothing and pass."""
    bad = str(FIXTURES / "rl001_bad.py")
    assert lint_main([bad, "--changed-only", "no-such-ref-xyz"]) == 2
    captured = capsys.readouterr()
    assert "no-such-ref-xyz" in captured.err


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def test_baseline_round_trips_and_filters(tmp_path):
    report = lint_paths([FIXTURES / "rl008_bad.py"], select=["RL008"])
    assert len(report.violations) == 3
    baseline = Baseline.from_violations(report.violations)
    path = tmp_path / "lint_baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert len(loaded.entries) == 3
    assert all(
        entry.justification.startswith("TODO") for entry in loaded.entries
    )
    filtered = lint_paths(
        [FIXTURES / "rl008_bad.py"], select=["RL008"], baseline=loaded
    )
    assert filtered.ok
    assert not filtered.violations
    assert len(filtered.baselined) == 3


def test_baseline_update_preserves_justifications():
    report = lint_paths([FIXTURES / "rl008_bad.py"], select=["RL008"])
    first = Baseline.from_violations(report.violations)
    reviewed = Baseline(
        entries=[
            type(entry)(
                rule_id=entry.rule_id,
                path=entry.path,
                message=entry.message,
                justification="reviewed: fixture, intentionally racy",
            )
            for entry in first.entries
        ]
    )
    regenerated = Baseline.from_violations(report.violations, keep=reviewed)
    assert all(
        entry.justification == "reviewed: fixture, intentionally racy"
        for entry in regenerated.entries
    )


def test_committed_baseline_entries_are_justified_and_live():
    """Every committed exemption still matches a finding and says why."""
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    assert baseline.entries
    for entry in baseline.entries:
        assert entry.justification, entry.message
        assert not entry.justification.startswith("TODO"), entry.message


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


def test_sarif_report_structure():
    report = lint_paths([FIXTURES / "rl007_bad.py"], select=["RL007"])
    log = json.loads(sarif_report(report))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == {"RL007"}
    assert len(run["results"]) == 5
    result = run["results"][0]
    assert result["ruleId"] == "RL007"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] >= 1
    assert location["region"]["startColumn"] >= 1


def test_cli_sarif_format(capsys):
    bad = str(FIXTURES / "rl007_bad.py")
    assert (
        lint_main([bad, "--select", "RL007", "--format", "sarif"]) == 1
    )
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"]


# ---------------------------------------------------------------------------
# RL008 extras: await-under-lock, and the acceptance-criteria mutation
# ---------------------------------------------------------------------------


def test_rl008_flags_await_under_lock(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.jobs = []\n"
        "\n"
        "    def add(self, job):\n"
        "        with self._lock:\n"
        "            self.jobs.append(job)\n"
        "\n"
        "    async def flush(self, sink):\n"
        "        with self._lock:\n"
        "            await sink.send(self.jobs)\n",
        encoding="utf-8",
    )
    report = lint_paths([src], select=["RL008"])
    assert any(
        "awaits while holding" in v.message for v in report.violations
    ), [v.format() for v in report.violations]


def test_rl008_catches_seeded_store_mutation_in_diff_mode(tmp_path):
    """Acceptance check: moving one guarded write in ``serve/store.py``
    outside its lock is caught by RL008, in diff mode, on the moved
    lines — the exact drift the PR lint job exists to stop."""
    source = (
        REPO_ROOT / "src" / "repro" / "serve" / "store.py"
    ).read_text(encoding="utf-8")
    repo = tmp_path / "repo"
    (repo / "serve").mkdir(parents=True)
    target = repo / "serve" / "store.py"
    target.write_text(source, encoding="utf-8")

    def git(*args: str) -> None:
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=lint@test",
                "-c",
                "user.name=lint",
                *args,
            ],
            cwd=repo,
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    git("add", ".")
    git("commit", "-q", "-m", "seed")

    # Mutate: hoist the guarded ``entry.log.append(...)`` block in
    # ``record_like`` out of its ``with entry.lock:`` region (a
    # plausible "the append looks lock-free" refactor).
    lines = source.splitlines(keepends=True)
    start = next(
        i for i, line in enumerate(lines) if "def record_like" in line
    )
    appender = next(
        i for i in range(start, len(lines))
        if "entry.log.append(" in lines[i]
    )
    closer = next(
        i for i in range(appender, len(lines))
        if lines[i].rstrip() == " " * 12 + ")"
    )
    with_line = next(
        i for i in range(start, appender)
        if "with entry.lock:" in lines[i]
    )
    block = [line[4:] for line in lines[appender : closer + 1]]
    mutated = (
        lines[:with_line]
        + block
        + lines[with_line:appender]
        + lines[closer + 1 :]
    )
    target.write_text("".join(mutated), encoding="utf-8")

    changed = git_changed_lines("HEAD", cwd=repo)
    changed_for_file = changed[target.resolve().as_posix()]
    assert changed_for_file, "mutation produced no diff"

    report = lint_paths(
        [target], select=["RL008"], changed_lines=changed
    )
    assert not report.ok, "RL008 missed the unlocked guarded write"
    assert all(v.rule_id == "RL008" for v in report.violations)
    assert any(".log" in v.message or "log" in v.message for v in report.violations)
    assert all(v.line in changed_for_file for v in report.violations), (
        "diff mode must anchor findings on the moved lines",
        [v.format() for v in report.violations],
    )


# ---------------------------------------------------------------------------
# the tree polices itself
# ---------------------------------------------------------------------------


def test_live_tree_is_lint_clean_modulo_baseline():
    """All eleven rules over ``src/repro``: clean except the committed,
    justified baseline — which must itself still be live."""
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    report = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline)
    assert report.ok, "\n".join(v.format() for v in report.violations)
    assert report.files_checked > 50
    assert report.rules_run == ALL_RULE_IDS
    assert report.baselined, "committed baseline matched nothing"
