"""Tests for the ``repro.lint`` invariant checker.

Three layers:

* fixture tests — every rule has a ``bad`` fixture that must flag, a
  ``good`` fixture that must stay silent, and a ``suppressed`` fixture
  whose findings must land in ``report.suppressed`` instead of
  ``report.violations``;
* engine/CLI tests — suppression parsing, rule selection, report
  formats, exit codes;
* a meta-test asserting the live ``src/repro`` tree is lint-clean, so
  any future violation fails the suite even without the CI lint job.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import LintReport, Violation, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import PARSE_RULE, discover_files
from repro.lint.report import json_report, text_report
from repro.lint.rules import all_rules, rule_ids

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULE_IDS = ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006")

#: rule id -> (bad target, good target, suppressed target).  RL006 is a
#: cross-file rule, so its fixtures are miniature project trees.
FIXTURE_TARGETS = {
    "RL001": ("rl001_bad.py", "rl001_good.py", "rl001_suppressed.py"),
    "RL002": ("rl002_bad.py", "rl002_good.py", "rl002_suppressed.py"),
    "RL003": ("rl003_bad.py", "rl003_good.py", "rl003_suppressed.py"),
    "RL004": ("rl004_bad.py", "rl004_good.py", "rl004_suppressed.py"),
    "RL005": ("rl005_bad.py", "rl005_good.py", "rl005_suppressed.py"),
    "RL006": ("rl006_bad", "rl006_good", None),
}


def run_rule(rule_id: str, target: str) -> LintReport:
    return lint_paths([FIXTURES / target], select=[rule_id])


# ---------------------------------------------------------------------------
# fixture tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_bad_fixture_is_flagged(rule_id):
    bad, _, _ = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, bad)
    assert not report.ok
    assert report.violations, f"{rule_id} found nothing in {bad}"
    assert {v.rule_id for v in report.violations} == {rule_id}
    for violation in report.violations:
        assert violation.line >= 1
        assert violation.col >= 1
        assert violation.message


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    _, good, _ = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, good)
    assert report.ok, [v.format() for v in report.violations]
    assert not report.suppressed


@pytest.mark.parametrize(
    "rule_id",
    [rid for rid in ALL_RULE_IDS if FIXTURE_TARGETS[rid][2] is not None],
)
def test_suppressed_fixture_moves_findings_aside(rule_id):
    _, _, suppressed = FIXTURE_TARGETS[rule_id]
    report = run_rule(rule_id, suppressed)
    assert report.ok, [v.format() for v in report.violations]
    assert report.suppressed, f"{rule_id} suppression fixture flagged nothing"
    assert {v.rule_id for v in report.suppressed} == {rule_id}


def test_bad_fixture_violation_counts():
    """Pin the per-fixture finding counts so rules don't silently dull."""
    expected = {
        "RL001": 8,  # seed/randint/shuffle, 2x default_rng, 3x stdlib random
        "RL002": 5,  # lambda init, nested submit, lambda submit, self.*, partial
        "RL003": 5,  # counts assign, field bump, setattr, 2x metric mirror
        "RL004": 6,  # camelCase constant (def + use), no namespace, bad
        #              subsystem, missing _total, label drift
        "RL005": 3,  # bare except, silent Exception, silent BaseException tuple
        "RL006": 1,  # undocumented_thing missing from docs/api.md
    }
    for rule_id, count in expected.items():
        bad, _, _ = FIXTURE_TARGETS[rule_id]
        report = run_rule(rule_id, bad)
        assert len(report.violations) == count, (
            rule_id,
            [v.format() for v in report.violations],
        )


def test_rl004_label_drift_points_at_minority_site():
    report = run_rule("RL004", "rl004_bad.py")
    drift = [v for v in report.violations if "label" in v.message.lower()]
    assert len(drift) == 1
    assert "kind" in drift[0].message


def test_rl003_good_fixture_absorb_is_sanctioned():
    """``absorb`` is the sink-preserving merge; it must never be flagged."""
    report = run_rule("RL003", "rl003_good.py")
    assert report.ok


def test_rules_only_fire_for_their_own_id():
    """Running every rule over one bad fixture flags only that rule."""
    for rule_id in ALL_RULE_IDS:
        bad, _, _ = FIXTURE_TARGETS[rule_id]
        report = lint_paths([FIXTURES / bad])
        assert {v.rule_id for v in report.violations} == {rule_id}, (
            rule_id,
            [v.format() for v in report.violations],
        )


# ---------------------------------------------------------------------------
# engine behaviour
# ---------------------------------------------------------------------------


def test_registry_exposes_all_six_rules():
    assert tuple(rule_ids()) == ALL_RULE_IDS
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == list(ALL_RULE_IDS)
    for rule in rules:
        assert rule.title
        assert rule.rationale


def test_select_and_ignore_filter_rules():
    bad = FIXTURES / "rl001_bad.py"
    assert lint_paths([bad], select=["RL005"]).ok
    assert lint_paths([bad], ignore=["RL001"]).ok
    assert not lint_paths([bad], select=["rl001"]).ok  # case-insensitive


def test_disable_all_suppresses_every_rule(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "import numpy as np\n"
        "x = np.random.randint(10)  # repro-lint: disable=all\n",
        encoding="utf-8",
    )
    report = lint_paths([src], select=["RL001"])
    assert report.ok
    assert len(report.suppressed) == 1


def test_suppression_comment_inside_string_is_inert(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        'TEXT = "# repro-lint: disable-file=RL001"\n'
        "import numpy as np\n"
        "x = np.random.randint(10)\n",
        encoding="utf-8",
    )
    report = lint_paths([src], select=["RL001"])
    assert not report.ok


def test_syntax_error_reports_parse_rule(tmp_path):
    src = tmp_path / "broken.py"
    src.write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([src])
    assert not report.ok
    assert report.violations[0].rule_id == PARSE_RULE


def test_discover_files_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text(
        "x = 1\n", encoding="utf-8"
    )
    found = discover_files([tmp_path])
    assert [p.name for p in found] == ["mod.py"]
    assert all("__pycache__" not in p.parts for p in found)


def test_violation_format_is_clickable():
    violation = Violation("RL001", "src/repro/x.py", 12, 5, "boom")
    assert violation.format() == "src/repro/x.py:12:5: RL001 boom"


# ---------------------------------------------------------------------------
# reporters and CLI
# ---------------------------------------------------------------------------


def test_text_report_summarises(tmp_path):
    report = lint_paths([FIXTURES / "rl005_bad.py"], select=["RL005"])
    text = text_report(report)
    assert "RL005" in text
    assert "rl005_bad.py" in text
    assert "checked 1 files: 3 violations (0 suppressed)" in text


def test_json_report_round_trips():
    report = lint_paths([FIXTURES / "rl001_bad.py"], select=["RL001"])
    payload = json.loads(json_report(report))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["violations"]
    first = payload["violations"][0]
    assert first["rule_id"] == "RL001"
    assert set(first) >= {"rule_id", "path", "line", "col", "message"}


def test_cli_exit_codes_and_output(capsys):
    bad = str(FIXTURES / "rl001_bad.py")
    good = str(FIXTURES / "rl001_good.py")
    assert lint_main([good, "--select", "RL001"]) == 0
    capsys.readouterr()
    assert lint_main([bad, "--select", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "rl001_bad.py" in out


def test_cli_json_format(capsys):
    bad = str(FIXTURES / "rl004_bad.py")
    assert lint_main([bad, "--select", "RL004", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert all(v["rule_id"] == "RL004" for v in payload["violations"])


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_show_suppressed(capsys):
    target = str(FIXTURES / "rl003_suppressed.py")
    assert lint_main([target, "--select", "RL003", "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    assert "RL003" in out
    assert "suppressed" in out


# ---------------------------------------------------------------------------
# the tree polices itself
# ---------------------------------------------------------------------------


def test_live_tree_is_lint_clean():
    report = lint_paths([REPO_ROOT / "src" / "repro"])
    assert report.ok, "\n".join(v.format() for v in report.violations)
    assert report.files_checked > 50
    assert report.rules_run == ALL_RULE_IDS
