"""Unit tests for input validation (repro.core.validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, SizeRatioError, ValidationError
from repro.core.types import Community
from repro.core.validation import (
    check_dimensions,
    check_size_ratio,
    orient_pair,
    validate_epsilon,
    validate_pair,
)


def community(n: int, d: int = 3, name: str = "c") -> Community:
    return Community(name, np.ones((n, d), dtype=np.int64))


class TestDimensions:
    def test_matching_dimensions_pass(self):
        check_dimensions(community(3, 4), community(5, 4))

    def test_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError) as excinfo:
            check_dimensions(community(3, 4), community(5, 6))
        assert excinfo.value.dims_b == 4
        assert excinfo.value.dims_a == 6


class TestSizeRatio:
    def test_equal_sizes_pass(self):
        check_size_ratio(community(10), community(10))

    def test_exact_half_boundary_even(self):
        # |A| = 10 -> ceil(10/2) = 5 is allowed.
        check_size_ratio(community(5), community(10))

    def test_below_half_rejected_even(self):
        with pytest.raises(SizeRatioError):
            check_size_ratio(community(4), community(10))

    def test_ceiling_boundary_odd(self):
        # |A| = 11 -> ceil(11/2) = 6; 5 must fail, 6 must pass.
        check_size_ratio(community(6), community(11))
        with pytest.raises(SizeRatioError):
            check_size_ratio(community(5), community(11))

    def test_b_larger_than_a_rejected(self):
        with pytest.raises(SizeRatioError):
            check_size_ratio(community(11), community(10))


class TestOrientPair:
    def test_keeps_order_when_first_smaller(self):
        b, a = community(3, name="small"), community(5, name="big")
        oriented_b, oriented_a, swapped = orient_pair(b, a)
        assert not swapped
        assert oriented_b.name == "small"

    def test_swaps_when_first_larger(self):
        big, small = community(5, name="big"), community(3, name="small")
        oriented_b, oriented_a, swapped = orient_pair(big, small)
        assert swapped
        assert oriented_b.name == "small"
        assert oriented_a.name == "big"

    def test_tie_keeps_caller_order(self):
        first, second = community(4, name="first"), community(4, name="second")
        oriented_b, _, swapped = orient_pair(first, second)
        assert not swapped
        assert oriented_b.name == "first"


class TestValidateEpsilon:
    def test_accepts_zero(self):
        assert validate_epsilon(0) == 0

    def test_accepts_positive(self):
        assert validate_epsilon(15000) == 15000

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            validate_epsilon(-1)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            validate_epsilon(True)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            validate_epsilon(1.5)


class TestValidatePair:
    def test_auto_orient_and_ratio(self):
        big, small = community(6, name="big"), community(4, name="small")
        oriented_b, oriented_a, swapped = validate_pair(big, small)
        assert swapped
        assert oriented_b.name == "small"

    def test_ratio_enforced_after_orientation(self):
        with pytest.raises(SizeRatioError):
            validate_pair(community(20), community(4))

    def test_ratio_can_be_disabled(self):
        oriented_b, oriented_a, _ = validate_pair(
            community(2), community(20), enforce_size_ratio=False
        )
        assert oriented_b.n_users == 2

    def test_no_auto_orient_keeps_order(self):
        big, small = community(6), community(4)
        with pytest.raises(SizeRatioError):
            validate_pair(big, small, auto_orient=False)

    def test_dimension_check_runs_first(self):
        with pytest.raises(DimensionMismatchError):
            validate_pair(community(3, d=2), community(3, d=5))
