"""Tests for the extensions (vector epsilon, weighted similarity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import csj_similarity
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from repro.extensions import (
    VectorEpsilonJoin,
    vector_epsilon_similarity,
    weighted_similarity,
)
from tests.conftest import assert_valid_matching, random_couple


@pytest.fixture
def couple():
    vectors_b, vectors_a = random_couple(77)
    return Community("B", vectors_b), Community("A", vectors_a)


class TestVectorEpsilonJoin:
    def test_uniform_vector_equals_scalar_csj(self, couple):
        community_b, community_a = couple
        d = community_b.n_dims
        vector_result = vector_epsilon_similarity(
            community_b, community_a, [1] * d, matcher="hopcroft_karp"
        )
        scalar_result = csj_similarity(
            community_b, community_a, epsilon=1,
            method="ex-minmax", matcher="hopcroft_karp",
        )
        assert vector_result.n_matched == scalar_result.n_matched

    @pytest.mark.parametrize("seed", range(5))
    def test_encoded_equals_baseline_strategy(self, seed):
        vectors_b, vectors_a = random_couple(seed + 900)
        community_b = Community("B", vectors_b)
        community_a = Community("A", vectors_a)
        epsilons = [0, 1, 2, 1, 0, 3][: community_b.n_dims]
        encoded = VectorEpsilonJoin(epsilons, strategy="encoded").join(
            community_b, community_a
        )
        baseline = VectorEpsilonJoin(epsilons, strategy="baseline").join(
            community_b, community_a
        )
        assert set(encoded.pair_tuples()) == set(baseline.pair_tuples())

    def test_matching_respects_per_dimension_thresholds(self, couple):
        community_b, community_a = couple
        epsilons = np.array([3, 0, 2, 1, 0, 2])[: community_b.n_dims]
        result = VectorEpsilonJoin(epsilons).join(community_b, community_a)
        for b_index, a_index in result.pair_tuples():
            diff = np.abs(
                community_b.vectors[b_index] - community_a.vectors[a_index]
            )
            assert (diff <= epsilons).all()

    def test_loosening_one_dimension_only_grows_matching(self, couple):
        community_b, community_a = couple
        d = community_b.n_dims
        tight = VectorEpsilonJoin([1] * d, matcher="hopcroft_karp").join(*couple)
        loose_eps = [1] * d
        loose_eps[0] = 5
        loose = VectorEpsilonJoin(loose_eps, matcher="hopcroft_karp").join(*couple)
        assert loose.n_matched >= tight.n_matched

    def test_zero_vector_requires_equality(self):
        vectors = np.arange(12).reshape(4, 3)
        community_b = Community("B", vectors)
        community_a = Community("A", vectors)
        result = VectorEpsilonJoin([0, 0, 0]).join(community_b, community_a)
        assert result.similarity == 1.0

    def test_greedy_matcher_not_exact(self, couple):
        result = VectorEpsilonJoin([1] * 6, matcher="greedy").join(*couple)
        assert result.exact is False

    def test_dimension_mismatch_rejected(self, couple):
        with pytest.raises(ConfigurationError, match="d="):
            VectorEpsilonJoin([1, 1]).join(*couple)

    def test_invalid_epsilons(self):
        with pytest.raises(ConfigurationError):
            VectorEpsilonJoin([])
        with pytest.raises(ConfigurationError):
            VectorEpsilonJoin([1, -1])
        with pytest.raises(ConfigurationError):
            VectorEpsilonJoin([1.5, 2.0])
        with pytest.raises(ConfigurationError):
            VectorEpsilonJoin([[1, 2]])

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            VectorEpsilonJoin([1, 1], strategy="quantum")

    def test_result_is_one_to_one(self, couple):
        community_b, community_a = couple
        result = VectorEpsilonJoin([2] * community_b.n_dims).join(
            community_b, community_a
        )
        result.check_one_to_one()


class TestWeightedSimilarity:
    def test_uniform_weights_recover_eq1(self, couple):
        outcome = weighted_similarity(*couple, epsilon=1, weights="uniform")
        assert outcome.weighted == pytest.approx(outcome.unweighted)
        assert outcome.scheme == "uniform"

    def test_activity_weights_shift_the_score(self, couple):
        outcome = weighted_similarity(*couple, epsilon=1, weights="activity")
        assert 0.0 <= outcome.weighted <= 1.0
        assert outcome.base.exact

    def test_custom_weights(self):
        vectors = np.array([[0, 0], [10, 10], [50, 50]])
        community_b = Community("B", vectors)
        # A matches only the first two B users.
        community_a = Community("A", np.array([[0, 0], [10, 10], [90, 90]]))
        outcome = weighted_similarity(
            community_b, community_a, epsilon=0, weights=[1.0, 3.0, 6.0]
        )
        # Matched weight = 1 + 3 of total 10.
        assert outcome.weighted == pytest.approx(0.4)
        assert outcome.unweighted == pytest.approx(2 / 3)
        assert outcome.scheme == "custom"

    def test_weights_apply_to_oriented_b(self):
        rng = np.random.default_rng(5)
        small = Community("small", rng.integers(0, 9, size=(6, 3)))
        big = Community("big", rng.integers(0, 9, size=(10, 3)))
        # Passing the pair reversed must weight the *small* side.
        outcome = weighted_similarity(
            big, small, epsilon=2, weights=[1.0] * 6
        )
        assert outcome.base.swapped

    def test_invalid_scheme(self, couple):
        with pytest.raises(ConfigurationError, match="unknown weight scheme"):
            weighted_similarity(*couple, epsilon=1, weights="karma")

    def test_invalid_vector_shapes(self, couple):
        with pytest.raises(ConfigurationError, match="shape"):
            weighted_similarity(*couple, epsilon=1, weights=[1.0, 2.0])

    def test_all_zero_weights_rejected(self, couple):
        community_b, _ = couple
        with pytest.raises(ConfigurationError, match="all be zero"):
            weighted_similarity(
                *couple, epsilon=1, weights=[0.0] * community_b.n_users
            )


class TestOptimalWeightedMatching:
    def test_optimal_never_below_greedy_weight(self, couple):
        greedy = weighted_similarity(*couple, epsilon=1, weights="activity")
        optimal = weighted_similarity(
            *couple, epsilon=1, weights="activity", optimize=True
        )
        assert optimal.weighted >= greedy.weighted - 1e-12
        optimal.base.check_one_to_one()

    def test_optimal_prefers_heavy_users(self):
        # b0 (heavy) and b1 (light) both match only a0: the optimal
        # weighted matching must cover the heavy user.
        community_b = Community("B", np.array([[10, 10], [10, 11]]))
        community_a = Community("A", np.array([[10, 10], [50, 50]]))
        outcome = weighted_similarity(
            community_b,
            community_a,
            epsilon=0,
            weights=[100.0, 1.0],
            optimize=True,
        )
        matched_b = {pair.b_index for pair in outcome.base.pairs}
        assert matched_b == {0}
        assert outcome.weighted == pytest.approx(100.0 / 101.0)

    def test_optimal_pairs_satisfy_condition(self, couple):
        community_b, community_a = couple
        outcome = weighted_similarity(
            community_b, community_a, epsilon=1, weights="uniform", optimize=True
        )
        for pair in outcome.base.pairs:
            diff = np.abs(
                community_b.vectors[pair.b_index]
                - community_a.vectors[pair.a_index]
            ).max()
            assert diff <= 1

    def test_optimal_uniform_weight_equals_maximum_count(self, couple):
        from repro import csj_similarity

        outcome = weighted_similarity(
            *couple, epsilon=1, weights="uniform", optimize=True
        )
        exact = csj_similarity(
            *couple, epsilon=1, method="ex-minmax", matcher="hopcroft_karp"
        )
        # Uniform weights make weight maximisation equal cardinality
        # maximisation.
        assert outcome.base.n_matched == exact.n_matched
