"""Tests for experiment result persistence (repro.analysis.results_io)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import render_method_table, run_method_table, run_scalability
from repro.analysis.results_io import (
    load_scalability_cells,
    load_table_run,
    save_scalability_cells,
    save_table_run,
)
from repro.core.errors import ValidationError

TINY = 1 / 2048


@pytest.fixture(scope="module")
def table_run():
    return run_method_table(4, scale=TINY, seed=7)


class TestTableRunRoundTrip:
    def test_round_trip_preserves_cells(self, tmp_path, table_run):
        path = save_table_run(tmp_path / "t4.json", table_run)
        restored = load_table_run(path)
        assert restored.table == table_run.table
        assert restored.methods == table_run.methods
        assert len(restored.rows) == len(table_run.rows)
        for original, loaded in zip(table_run.rows, restored.rows):
            assert loaded.spec.c_id == original.spec.c_id
            for method in table_run.methods:
                assert loaded.results[method].n_matched == (
                    original.results[method].n_matched
                )
                assert loaded.results[method].similarity == pytest.approx(
                    original.results[method].similarity
                )

    def test_restored_run_renders(self, tmp_path, table_run):
        path = save_table_run(tmp_path / "t4.json", table_run)
        rendered = render_method_table(load_table_run(path))
        assert "Table 4" in rendered

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such results"):
            load_table_run(tmp_path / "ghost.json")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValidationError, match="not a table-run"):
            load_table_run(path)

    def test_unknown_couple_rejected(self, tmp_path, table_run):
        path = save_table_run(tmp_path / "t4.json", table_run)
        payload = json.loads(path.read_text())
        payload["rows"][0]["c_id"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="unknown couple"):
            load_table_run(path)


class TestScalabilityRoundTrip:
    def test_round_trip(self, tmp_path):
        cells = run_scalability(
            scale=TINY, categories=("Job_search",), steps=(1, 2)
        )
        path = save_scalability_cells(tmp_path / "t11.json", cells, scale=TINY)
        restored, scale = load_scalability_cells(path)
        assert scale == TINY
        assert [c.average_size for c in restored] == [
            c.average_size for c in cells
        ]

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValidationError, match="not a scalability"):
            load_scalability_cells(path)
