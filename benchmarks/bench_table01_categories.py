"""Table 1: per-category like totals and rankings for both datasets.

The paper's Table 1 ranks the 27 categories of each dataset by total
likes; VK is strongly skewed (Entertainment ~4450x the tail) while the
Synthetic column is near-uniform (+-10%).  The bench samples both
populations, ranks the categories and checks the skew contrast.
"""

from __future__ import annotations

from repro.analysis import render_table1, run_table1


def bench_table1_rankings(benchmark, bench_seed, report_writer):
    run = benchmark.pedantic(
        run_table1,
        kwargs={"n_users": 20_000, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report_writer("table01", render_table1(run))

    assert run.vk_ranking[0].category == "Entertainment"
    vk_totals = [entry.total_likes for entry in run.vk_ranking]
    synthetic_totals = [entry.total_likes for entry in run.synthetic_ranking]
    vk_skew = vk_totals[0] / max(vk_totals[-1], 1)
    synthetic_skew = synthetic_totals[0] / max(synthetic_totals[-1], 1)
    assert vk_skew > 50, "VK ranking must be strongly skewed (paper: ~4450x)"
    assert synthetic_skew < 2, "Synthetic ranking must stay near-uniform"
