"""Table 11: scalability of Ex-MinMax on VK across all 20 categories.

The paper times Ex-MinMax on four couples of growing average size per
category.  The bench regenerates every cell at bench scale and checks
the headline shape: runtime grows monotonically-in-trend with size, and
the largest Entertainment couple is the most expensive cell overall.
"""

from __future__ import annotations

from repro.analysis import render_scalability_table, run_scalability


def bench_table11(benchmark, bench_scale, bench_seed, report_writer):
    cells = benchmark.pedantic(
        run_scalability,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report_writer(
        "table11", render_scalability_table(cells, scale=bench_scale)
    )

    assert len(cells) == 20 * 4
    by_category: dict[str, list] = {}
    for cell in cells:
        by_category.setdefault(cell.category, []).append(cell)
    for series in by_category.values():
        sizes = [cell.average_size for cell in series]
        assert sizes == sorted(sizes)
        # Growth trend: the largest couple must cost more than the smallest.
        assert series[-1].elapsed_seconds >= series[0].elapsed_seconds

    slowest = max(cells, key=lambda cell: cell.elapsed_seconds)
    assert slowest.category == "Entertainment"
    assert slowest.step == 4
