"""Parallel Ex-SuperEGO: the paper's "can run in parallel" remark.

Section 6.1 pins SuperEGO to one thread for fair comparison and notes
it parallelises.  The exact variant of this implementation collects
candidates over B-range slices in a thread pool; the bench compares 1
vs 4 workers and asserts the matching is identical regardless.
"""

from __future__ import annotations

import pytest

from repro import ExSuperEGO
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple


@pytest.fixture(scope="module")
def parallel_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[4], generator, scale=bench_scale)


@pytest.mark.parametrize("n_jobs", (1, 4))
def bench_superego_jobs(benchmark, n_jobs, parallel_couple):
    community_b, community_a = parallel_couple
    algorithm = ExSuperEGO(VK_EPSILON, n_jobs=n_jobs)
    result = benchmark.pedantic(
        algorithm.join, args=(community_b, community_a), rounds=2, iterations=1
    )
    benchmark.extra_info["matched"] = result.n_matched


def bench_superego_jobs_equivalence(benchmark, parallel_couple, report_writer):
    community_b, community_a = parallel_couple

    def run_both():
        serial = ExSuperEGO(VK_EPSILON, n_jobs=1).join(community_b, community_a)
        parallel = ExSuperEGO(VK_EPSILON, n_jobs=4).join(community_b, community_a)
        return serial, parallel

    serial, parallel = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert set(serial.pair_tuples()) == set(parallel.pair_tuples())
    report_writer(
        "parallel_superego",
        f"serial {serial.elapsed_seconds:.3f}s vs 4 workers "
        f"{parallel.elapsed_seconds:.3f}s — identical matching "
        f"({serial.n_matched} pairs)",
    )
