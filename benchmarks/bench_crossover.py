"""Crossover study: which exact method wins at which couple size.

The paper's narrative has Ex-Baseline competitive only at small sizes,
Ex-MinMax scaling through the mid range, and the SuperEGO-style
recursion paying off as data grows.  This bench sweeps one couple over
a range of scales, times the exact contenders at each point, and
records the winner series — the "where crossovers fall" picture of the
evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import scale_sweep
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator

SCALES = [1 / 1024, 1 / 512, 1 / 256, 1 / 128]
CONTENDERS = ("ex-baseline", "ex-minmax", "ex-hybrid")


def bench_crossover_series(benchmark, bench_seed, report_writer):
    generator = VKGenerator(seed=bench_seed)
    spec = PAPER_COUPLES[0]

    def sweep_all():
        series = {}
        for method in CONTENDERS:
            series[method] = scale_sweep(
                spec, generator, SCALES, epsilon=VK_EPSILON, method=method
            )
        return series

    series = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    # All contenders are exact: identical similarity at every point.
    for points in zip(*series.values()):
        assert len({point.n_matched for point in points}) == 1

    lines = ["avg size   " + "  ".join(f"{m:>12s}" for m in CONTENDERS)]
    for index, scale in enumerate(SCALES):
        sizes = series[CONTENDERS[0]][index].parameter
        times = [series[m][index].elapsed_seconds for m in CONTENDERS]
        winner = CONTENDERS[times.index(min(times))]
        lines.append(
            f"{sizes:8,.0f}   "
            + "  ".join(f"{t:11.3f}s" for t in times)
            + f"   winner: {winner}"
        )
    report_writer("crossover", "\n".join(lines))

    # Emit the runtime-vs-size curves as an SVG figure too.
    from _shared import OUTPUT_DIR

    from repro.analysis.charts import Series, line_chart, save_chart

    chart_series = [
        Series(
            method,
            tuple(
                (point.parameter, point.elapsed_seconds)
                for point in series[method]
            ),
        )
        for method in CONTENDERS
    ]
    save_chart(
        OUTPUT_DIR / "crossover",
        line_chart(
            chart_series,
            title="Exact-method runtime vs couple size (cID 1, VK)",
            x_label="average couple size",
            y_label="seconds",
        ),
    )

    # The exhaustive baseline must not win at the largest size.
    largest = [series[m][-1].elapsed_seconds for m in CONTENDERS]
    assert largest[0] == max(largest), (
        "Ex-Baseline must be the slowest at the largest scale"
    )
