"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_report(name: str, text: str) -> Path:
    """Write a rendered table to benchmarks/output/<name>.txt and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path


def run_and_report(benchmark, table: int, report_writer, *, scale: float, seed: int):
    """Benchmark one full method table and persist its rendering."""
    from repro.analysis import render_method_table, run_method_table

    run = benchmark.pedantic(
        run_method_table,
        args=(table,),
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    report_writer(f"table{table:02d}", render_method_table(run))
    return run
