"""Pruning-effectiveness bench: the quantitative Section 4 story.

Runs the faithful python engines on one couple and reports the event
breakdown per method — how many of the exhaustive |B| x |A| full
d-dimensional comparisons each method avoids through MIN PRUNE, MAX
PRUNE and NO OVERLAP.  The paper's efficiency claims hinge on exactly
these savings.
"""

from __future__ import annotations

import pytest

from repro.analysis.events_report import profile_events, render_event_report
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

#: Python engines are interpreter-bound; profile on a smaller couple.
PROFILE_SCALE_DIVISOR = 16


@pytest.fixture(scope="module")
def profile_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(
        PAPER_COUPLES[0], generator, scale=bench_scale / PROFILE_SCALE_DIVISOR
    )


def bench_event_breakdown(benchmark, profile_couple, report_writer):
    community_b, community_a = profile_couple
    profiles = benchmark.pedantic(
        profile_events,
        args=(community_b, community_a),
        kwargs={"epsilon": VK_EPSILON},
        rounds=1,
        iterations=1,
    )
    report_writer("events_pruning", render_event_report(profiles))

    by_method = {profile.method: profile for profile in profiles}
    # The exhaustive exact baseline saves nothing by definition.
    assert by_method["ex-baseline"].comparisons_saved_percent == 0.0
    # The MinMax encoding must remove the overwhelming majority of the
    # full comparisons (the paper's Tables 3-6 speedups come from here).
    assert by_method["ex-minmax"].comparisons_saved_percent > 90.0
    assert by_method["ap-minmax"].comparisons_saved_percent > 90.0
    # Accuracy is untouched by the pruning.
    assert by_method["ex-minmax"].n_matched == by_method["ex-baseline"].n_matched
