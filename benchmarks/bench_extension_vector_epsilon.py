"""Vector-epsilon extension bench: encoded vs baseline strategy.

The per-category epsilon generalisation keeps the MinMax-style encoded
pruning applicable; this bench measures the encoded strategy's speedup
over the exhaustive baseline under a non-uniform epsilon vector and
asserts both return the identical matching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import CATEGORIES, PAPER_COUPLES, VKGenerator, build_couple
from repro.extensions import VectorEpsilonJoin


@pytest.fixture(scope="module")
def extension_setup(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    community_b, community_a = build_couple(
        PAPER_COUPLES[0], generator, scale=bench_scale / 2
    )
    # Looser thresholds on the heavy head categories, tight elsewhere —
    # the deployment-style configuration the extension motivates.
    epsilons = np.ones(len(CATEGORIES), dtype=np.int64)
    epsilons[:5] = 3
    return community_b, community_a, epsilons


@pytest.mark.parametrize("strategy", ("baseline", "encoded"))
def bench_vector_epsilon_strategy(benchmark, strategy, extension_setup):
    community_b, community_a, epsilons = extension_setup
    join = VectorEpsilonJoin(epsilons, strategy=strategy)
    result = benchmark.pedantic(
        join.join, args=(community_b, community_a), rounds=2, iterations=1
    )
    benchmark.extra_info["matched"] = result.n_matched


def bench_vector_epsilon_equivalence(benchmark, extension_setup, report_writer):
    community_b, community_a, epsilons = extension_setup

    def run_both():
        encoded = VectorEpsilonJoin(epsilons, strategy="encoded").join(
            community_b, community_a
        )
        baseline = VectorEpsilonJoin(epsilons, strategy="baseline").join(
            community_b, community_a
        )
        return encoded, baseline

    encoded, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert set(encoded.pair_tuples()) == set(baseline.pair_tuples())
    report_writer(
        "extension_vector_epsilon",
        f"vector-epsilon join: {encoded.n_matched} matched "
        f"({encoded.similarity_percent:.2f}%); encoded "
        f"{encoded.elapsed_seconds:.3f}s vs baseline "
        f"{baseline.elapsed_seconds:.3f}s",
    )
