"""Table 2: the 20 compared community pairs (names and VK page ids).

A metadata table in the paper; here the bench materialises every couple
from the registry at bench scale to confirm the whole case-study suite
is constructible, and renders the Table 2 listing.
"""

from __future__ import annotations

from repro.analysis import render_table2
from repro.datasets import PAPER_COUPLES, VKGenerator, build_couple


def bench_table2_materialise_all_couples(
    benchmark, bench_scale, bench_seed, report_writer
):
    generator = VKGenerator(seed=bench_seed)

    def build_all():
        return [
            build_couple(spec, generator, scale=bench_scale)
            for spec in PAPER_COUPLES
        ]

    couples = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report_writer("table02", render_table2())

    assert len(couples) == 20
    for (community_b, community_a), spec in zip(couples, PAPER_COUPLES):
        assert community_b.name == spec.name_b
        assert len(community_b) <= len(community_a)
