"""Ablation C: faithful python engine vs vectorised numpy engine.

Every method ships both engines with identical results (asserted by the
test suite); this bench quantifies the speed gap on a smaller couple so
the pure-python reference stays affordable.
"""

from __future__ import annotations

import pytest

from repro import get_algorithm
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

ENGINE_SCALE_DIVISOR = 8  # python engines are O(n^2) interpreter loops


@pytest.fixture(scope="module")
def small_standard_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(
        PAPER_COUPLES[0], generator, scale=bench_scale / ENGINE_SCALE_DIVISOR
    )


@pytest.mark.parametrize("engine", ("python", "numpy"))
@pytest.mark.parametrize("method", ("ap-minmax", "ex-minmax"))
def bench_engine(benchmark, method, engine, small_standard_couple):
    community_b, community_a = small_standard_couple
    algorithm = get_algorithm(method, VK_EPSILON, engine=engine)
    result = benchmark.pedantic(
        algorithm.join,
        args=(community_b, community_a),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["matched"] = result.n_matched
