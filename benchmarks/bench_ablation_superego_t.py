"""Ablation D: SuperEGO's segment-size threshold ``t``.

``t`` controls when the divide-and-conquer recursion stops and the
nested-loop join takes over.  Small ``t`` maximises EGO-strategy pruning
but pays recursion overhead; large ``t`` degenerates towards the plain
nested loop.  The bench sweeps ``t`` and verifies the matching count is
invariant (pruning is exact, only the work distribution changes).
"""

from __future__ import annotations

import pytest

from repro import ExSuperEGO
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

THRESHOLDS = (8, 32, 128, 512)


@pytest.fixture(scope="module")
def standard_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[0], generator, scale=bench_scale)


@pytest.mark.parametrize("t", THRESHOLDS)
def bench_superego_threshold(benchmark, t, standard_couple):
    community_b, community_a = standard_couple
    algorithm = ExSuperEGO(VK_EPSILON, t=t)
    result = benchmark.pedantic(
        algorithm.join, args=(community_b, community_a), rounds=2, iterations=1
    )
    benchmark.extra_info["matched"] = result.n_matched


def bench_superego_threshold_invariance(benchmark, standard_couple, report_writer):
    community_b, community_a = standard_couple

    def sweep():
        return {
            t: ExSuperEGO(VK_EPSILON, t=t).join(community_b, community_a).n_matched
            for t in THRESHOLDS
        }

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(set(counts.values())) == 1, "t must not change the join result"
    report_writer(
        "ablation_superego_t",
        "\n".join(f"t={t}: matched={count}" for t, count in counts.items()),
    )
