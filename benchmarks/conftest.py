"""Shared configuration of the benchmark harness.

Every bench regenerates one table (or figure/ablation) of the paper at
``REPRO_BENCH_SCALE`` times the paper's community sizes (default 1/128,
i.e. couples of roughly 400–2600 users) and writes the rendered table to
``benchmarks/output/``.  Run with::

    pytest benchmarks/ --benchmark-only

Raise the scale (e.g. ``REPRO_BENCH_SCALE=0.03``) for numbers closer to
the paper's regime at the cost of longer runs.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _shared import write_report  # noqa: E402

#: Fraction of the paper's community sizes used by the benches.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 1 / 128))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", 7))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


@pytest.fixture(scope="session")
def report_writer():
    """Writes a rendered table to benchmarks/output/<name>.txt."""
    return write_report
