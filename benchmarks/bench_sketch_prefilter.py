"""Sketch pre-filter benchmark: candidate generation and honest recall.

Two measurements on the crossover-suite-style banded fleet (the same
workload shape as ``bench_engine_batch``, scaled to catalog size —
many communities, modest membership, so candidate *generation* is the
dominant cost):

* **candidate generation** — enumerating the non-provably-zero pairs
  via the sketch index (signature build + band-bucket posting lists)
  versus the envelope-only screen (one scalar envelope test per pair,
  all ``O(C^2)`` of them).  At ``target_recall`` 0.95 the sketch path
  must be at least 2x faster, and the recall it *achieves* against the
  envelope-admitted set is recorded alongside the brute-force sampled
  recall the engine folds into ``p``.
* **end to end** — ``top_k_pairs`` under the Ap-MinMax and Ap-SuperEGO
  screen methods with no prefilter, with the exact (``coverage``) tier
  and with the lossy tier.  The exact tier must keep the ranking
  byte-identical; the lossy tier's similarities must equal the baseline
  deflated by exactly the measured recall (the Eq. (1) ``p`` fold).

The ``sketch`` section merges into ``BENCH_engine.json`` (written by
``bench_engine_batch``) when not in smoke mode.  Runs carry the
``bench`` marker and are excluded from tier-1; ``scripts/bench_smoke.sh``
runs the seconds-long smoke variant (which skips the speedup assertion
— at toy sizes fixed signature-build overhead dominates).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

import pytest

from repro.apps import top_k_pairs
from repro.core.types import Community
from repro.engine.envelope import community_envelope, envelopes_separated
from repro.sketch import SketchPrefilter
from repro.testing import banded_community_fleet

#: Workload knobs (overridable for the smoke-scale run).
BANDS = int(os.environ.get("REPRO_BENCH_SKETCH_BANDS", 128))
PER_BAND = int(os.environ.get("REPRO_BENCH_SKETCH_PER_BAND", 6))
USERS = int(os.environ.get("REPRO_BENCH_SKETCH_USERS", 20))
DIMS = int(os.environ.get("REPRO_BENCH_SKETCH_DIMS", 6))
EPSILON = int(os.environ.get("REPRO_BENCH_SKETCH_EPSILON", 2))
TOP_K = int(os.environ.get("REPRO_BENCH_SKETCH_K", 10))
TARGET_RECALL = float(os.environ.get("REPRO_BENCH_SKETCH_TARGET_RECALL", 0.95))
#: Recall-estimator sample size.  Candidates are sparse at catalog scale
#: (intra-band pairs are well under 1% of the square), so the default
#: 24-pair sample would rarely contain a true candidate; a larger
#: seeded sample keeps the recorded recall grounded in actual pairs.
SAMPLE_PAIRS = int(os.environ.get("REPRO_BENCH_SKETCH_SAMPLE_PAIRS", 2048))
#: Smoke mode checks correctness only (signature build dominates tiny runs).
SMOKE = os.environ.get("REPRO_BENCH_SKETCH_SMOKE", "0") == "1"

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

pytestmark = pytest.mark.sketch


def build_fleet(seed: int = 7) -> list[Community]:
    """A catalog-scale banded fleet: many communities, small membership."""
    return banded_community_fleet(
        BANDS,
        PER_BAND,
        users=USERS,
        dims=DIMS,
        seed=seed,
        band_gap=600,
        high=40,
        name_format="band{band:02d}-m{member}",
    )


def timed(label: str, func):
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    print(f"  {label:24s} {elapsed:8.3f}s")
    return result, elapsed


def envelope_candidates(fleet: list[Community]) -> set[tuple[int, int]]:
    """The envelope-only candidate set: one scalar test per pair."""
    return {
        (first, second)
        for first, second in itertools.combinations(range(len(fleet)), 2)
        if not envelopes_separated(
            community_envelope(fleet[first]),
            community_envelope(fleet[second]),
            EPSILON,
        )
    }


def ranking_key(scores) -> list[tuple[str, str, str]]:
    return [(s.name_b, s.name_a, repr(s.similarity)) for s in scores]


@pytest.mark.bench
def bench_sketch_prefilter(report_writer):
    fleet = build_fleet()
    n_communities = len(fleet)
    all_pairs = n_communities * (n_communities - 1) // 2

    # -- candidate generation: envelope loop vs sketch index ----------
    # Pre-warm the per-community envelope memo so the baseline times the
    # pair loop alone (the steady-state cost), not envelope construction
    # — a conservative baseline for the speedup claim.  The sketch side
    # pays its full price every round: fresh prefilter, signature build,
    # index construction and enumeration.
    for community in fleet:
        community_envelope(community)

    envelope_times, sketch_times = [], []
    admitted = sketch_pairs = None
    recall_report = None
    for _ in range(3):
        admitted, t_envelope = timed(
            "envelope pair loop", lambda: envelope_candidates(fleet)
        )
        envelope_times.append(t_envelope)

        def sketch_round():
            prefilter = SketchPrefilter(
                target_recall=TARGET_RECALL, seed=7, sample_pairs=SAMPLE_PAIRS
            )
            prefilter.bind(fleet, metrics=None)
            return prefilter, prefilter.candidate_pairs(EPSILON)

        (prefilter, sketch_pairs), t_sketch = timed(
            "sketch build+enumerate", sketch_round
        )
        sketch_times.append(t_sketch)
        recall_report = prefilter.report(EPSILON)
    t_envelope = min(envelope_times)
    t_sketch = min(sketch_times)
    speedup = t_envelope / t_sketch

    # Recall against the envelope-admitted set (the population the tier
    # replaces) and the brute-force sampled recall the engine folds
    # into ``p``.
    envelope_recall = (
        len(sketch_pairs & admitted) / len(admitted) if admitted else 1.0
    )
    measured_recall = recall_report.recall
    assert 0.0 < measured_recall <= 1.0
    print(
        f"  candidates: envelope {len(admitted)}, sketch {len(sketch_pairs)} "
        f"of {all_pairs} pairs; envelope-recall {envelope_recall:.3f}, "
        f"measured recall {measured_recall:.3f}, speedup {speedup:.2f}x"
    )

    # -- end to end: Ap-MinMax / Ap-SuperEGO screens ------------------
    exact_tier = SketchPrefilter(target_recall=1.0, seed=7)
    lossy_tier = SketchPrefilter(
        target_recall=TARGET_RECALL, seed=7, sample_pairs=SAMPLE_PAIRS
    )
    end_to_end: dict[str, dict[str, object]] = {}
    for screen_method in ("ap-minmax", "ap-superego"):
        kwargs = dict(epsilon=EPSILON, k=TOP_K, screen_method=screen_method)
        baseline, t_baseline = timed(
            f"{screen_method} no prefilter", lambda: top_k_pairs(fleet, **kwargs)
        )
        exact, t_exact = timed(
            f"{screen_method} exact tier",
            lambda: top_k_pairs(fleet, prefilter=exact_tier, **kwargs),
        )
        lossy, t_lossy = timed(
            f"{screen_method} lossy tier",
            lambda: top_k_pairs(fleet, prefilter=lossy_tier, **kwargs),
        )
        assert ranking_key(exact) == ranking_key(baseline)
        folded = lossy_tier.recall(EPSILON)
        baseline_by_pair = {(s.name_b, s.name_a): s for s in baseline}
        for score in lossy:
            reference = baseline_by_pair.get((score.name_b, score.name_a))
            if reference is not None:
                assert score.similarity == pytest.approx(
                    reference.similarity * folded
                )
                if folded < 1.0:
                    assert not score.result.exact
        end_to_end[screen_method] = {
            "seconds": {
                "no_prefilter": round(t_baseline, 4),
                "exact_tier": round(t_exact, 4),
                "lossy_tier": round(t_lossy, 4),
            },
            "exact_tier_ranking_identical": True,
            "lossy_similarities_deflated_by_measured_recall": True,
        }

    section = {
        "workload": {
            "communities": n_communities,
            "bands": BANDS,
            "per_band": PER_BAND,
            "users_per_community": USERS,
            "dims": DIMS,
            "epsilon": EPSILON,
            "k": TOP_K,
            "all_pairs": all_pairs,
            "target_recall": TARGET_RECALL,
            "smoke": SMOKE,
        },
        "candidate_generation": {
            "envelope_admitted_pairs": len(admitted),
            "sketch_admitted_pairs": len(sketch_pairs),
            "envelope_loop_seconds": round(t_envelope, 4),
            "sketch_seconds": round(t_sketch, 4),
            "speedup": round(speedup, 2),
            "recall_vs_envelope_admits": round(envelope_recall, 4),
            "measured_recall_folded_into_p": round(measured_recall, 4),
            "recall_sample": recall_report.as_dict(),
        },
        "end_to_end": end_to_end,
        "index": prefilter.stats(),
    }
    report = json.dumps(section, indent=2)
    report_writer("sketch_prefilter", report)
    if not SMOKE:
        assert speedup >= 2.0, (
            f"sketch candidate generation ({t_sketch:.3f}s) must be >= 2x "
            f"faster than the envelope pair loop ({t_envelope:.3f}s); "
            f"measured {speedup:.2f}x"
        )
        if _JSON_PATH.exists():
            merged = json.loads(_JSON_PATH.read_text())
            merged["sketch"] = section
            _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
            print(f"[sketch section merged into {_JSON_PATH}]")
