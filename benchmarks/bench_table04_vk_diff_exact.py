"""Table 4: exact methods, VK dataset, different categories.

Paper shape: Ex-Baseline and Ex-MinMax report identical similarities;
Ex-MinMax is emphatically faster than Ex-Baseline; Ex-SuperEGO is the
least accurate (normalised aggregate-epsilon conversion) but fast.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table04(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 4, report_writer, scale=bench_scale, seed=bench_seed
    )

    for row in run.rows:
        assert row.similarity_percent("ex-baseline") == row.similarity_percent(
            "ex-minmax"
        )
        assert (
            row.similarity_percent("ex-superego")
            <= row.similarity_percent("ex-minmax") + 1e-9
        )
    minmax_time = sum(row.elapsed("ex-minmax") for row in run.rows)
    baseline_time = sum(row.elapsed("ex-baseline") for row in run.rows)
    assert minmax_time < baseline_time, "Ex-MinMax must beat Ex-Baseline on time"
