"""Ablation A: the encoding's part count (Section 4's 4-part claim).

The paper argues 4 parts is the best trade-off: fewer parts prune less
(more full comparisons, more time), more parts cost more memory.  The
bench sweeps n_parts over {1, 2, 4, 8} on a standard couple, verifying
the matching is invariant and recording how the pruning effectiveness
(full d-dimensional comparisons) changes.
"""

from __future__ import annotations

import pytest

from repro import ApMinMax
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

PART_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def standard_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[0], generator, scale=bench_scale)


@pytest.mark.parametrize("n_parts", PART_COUNTS)
def bench_parts(benchmark, n_parts, standard_couple):
    community_b, community_a = standard_couple
    algorithm = ApMinMax(VK_EPSILON, n_parts=n_parts)
    result = benchmark(algorithm.join, community_b, community_a)
    benchmark.extra_info["similarity_percent"] = result.similarity_percent


def bench_parts_pruning_report(benchmark, standard_couple, report_writer):
    """Non-timed summary: comparisons saved per part count."""
    community_b, community_a = standard_couple

    def sweep():
        rows = []
        reference = None
        for n_parts in PART_COUNTS:
            algorithm = ApMinMax(VK_EPSILON, n_parts=n_parts, engine="python")
            result = algorithm.join(community_b, community_a)
            rows.append(
                f"n_parts={n_parts}: comparisons={result.events.comparisons}, "
                f"no_overlap={result.events.no_overlap}, "
                f"similarity={result.similarity_percent:.2f}%"
            )
            if reference is None:
                reference = result.n_matched
            else:
                # The matching must not depend on the segmentation.
                assert result.n_matched == reference
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_writer("ablation_parts", "\n".join(rows))
