"""Table 10: exact methods, Synthetic dataset, same categories.

Paper shape: all exact methods agree on every >= 30% couple (zero
SuperEGO loss on uniform data); Ex-MinMax clearly beats Ex-Baseline on
time.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table10(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 10, report_writer, scale=bench_scale, seed=bench_seed
    )

    for row in run.rows:
        values = {
            round(row.similarity_percent(method), 6) for method in run.methods
        }
        assert len(values) == 1
        assert row.similarity_percent("ex-minmax") >= 25.0
    minmax_time = sum(row.elapsed("ex-minmax") for row in run.rows)
    baseline_time = sum(row.elapsed("ex-baseline") for row in run.rows)
    assert minmax_time < baseline_time
