"""Out-of-core join bench: disk-backed vs in-memory Ex-MinMax.

Measures the cost of bounded-memory joining (memmap gathers instead of
resident arrays) and asserts the matching is pair-for-pair identical to
the in-memory exact join.
"""

from __future__ import annotations

import pytest

from repro import csj_similarity
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple
from repro.extensions import OnDiskCommunity, out_of_core_similarity


@pytest.fixture(scope="module")
def disk_setup(tmp_path_factory, bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    community_b, community_a = build_couple(
        PAPER_COUPLES[0], generator, scale=bench_scale
    )
    root = tmp_path_factory.mktemp("ooc")
    disk_b = OnDiskCommunity.from_community(root / "b", community_b)
    disk_a = OnDiskCommunity.from_community(root / "a", community_a)
    return community_b, community_a, disk_b, disk_a


def bench_out_of_core_join(benchmark, disk_setup, report_writer):
    community_b, community_a, disk_b, disk_a = disk_setup
    result = benchmark.pedantic(
        out_of_core_similarity,
        args=(disk_b, disk_a),
        kwargs={"epsilon": VK_EPSILON, "chunk_size": 512},
        rounds=2,
        iterations=1,
    )
    memory = csj_similarity(
        community_b, community_a, epsilon=VK_EPSILON, method="ex-minmax"
    )
    assert set(result.pair_tuples()) == set(memory.pair_tuples())
    report_writer(
        "out_of_core",
        f"on-disk join: {result.similarity_percent:.2f}% in "
        f"{result.elapsed_seconds:.3f}s vs in-memory "
        f"{memory.elapsed_seconds:.3f}s (identical {result.n_matched} pairs)",
    )


def bench_in_memory_reference(benchmark, disk_setup):
    community_b, community_a, _, _ = disk_setup
    result = benchmark.pedantic(
        csj_similarity,
        args=(community_b, community_a),
        kwargs={"epsilon": VK_EPSILON, "method": "ex-minmax"},
        rounds=2,
        iterations=1,
    )
    assert result.n_matched > 0
