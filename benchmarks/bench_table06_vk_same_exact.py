"""Table 6: exact methods, VK dataset, same categories.

Same trend as Table 4 on the >= 30% couples: Ex-Baseline == Ex-MinMax,
Ex-SuperEGO below both, Ex-MinMax the best accuracy/time trade-off.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table06(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 6, report_writer, scale=bench_scale, seed=bench_seed
    )

    for row in run.rows:
        assert row.similarity_percent("ex-baseline") == row.similarity_percent(
            "ex-minmax"
        )
        assert (
            row.similarity_percent("ex-superego")
            <= row.similarity_percent("ex-minmax") + 1e-9
        )
        assert row.similarity_percent("ex-minmax") >= 25.0
    minmax_time = sum(row.elapsed("ex-minmax") for row in run.rows)
    baseline_time = sum(row.elapsed("ex-baseline") for row in run.rows)
    assert minmax_time < baseline_time
