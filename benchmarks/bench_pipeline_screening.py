"""Section 3's pipeline: approximate screening + exact refinement.

The paper prescribes running the fast approximate method over many
couples first and spending the exact method only on the shortlist —
"the time-consuming exact method uses the results of the fast
approximate method as input to alleviate its total execution overhead."
The bench quantifies the saving over the 20-couple suite: screen all
couples with Ap-MinMax, refine only those above 25% with Ex-MinMax, and
compare against the exact-everything cost.  Both strategies must agree
on the set of above-threshold couples.
"""

from __future__ import annotations

import time

import pytest

from repro import get_algorithm
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

THRESHOLD = 0.25


@pytest.fixture(scope="module")
def suite(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return [
        (spec, *build_couple(spec, generator, scale=bench_scale / 2))
        for spec in PAPER_COUPLES
    ]


def bench_screen_then_refine(benchmark, suite, report_writer):
    def pipeline():
        shortlist = []
        for spec, community_b, community_a in suite:
            screener = get_algorithm("ap-minmax", VK_EPSILON)
            if screener.join(community_b, community_a).similarity >= THRESHOLD:
                shortlist.append((spec, community_b, community_a))
        refined = {}
        for spec, community_b, community_a in shortlist:
            refiner = get_algorithm("ex-minmax", VK_EPSILON)
            refined[spec.c_id] = refiner.join(community_b, community_a).similarity
        return refined

    started = time.perf_counter()
    exact_everything = {}
    for spec, community_b, community_a in suite:
        refiner = get_algorithm("ex-minmax", VK_EPSILON)
        exact_everything[spec.c_id] = refiner.join(
            community_b, community_a
        ).similarity
    exact_cost = time.perf_counter() - started

    refined = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    pipeline_cost = benchmark.stats.stats.mean

    # Both strategies must surface the same above-threshold couples.
    expected = {
        c_id for c_id, sim in exact_everything.items() if sim >= THRESHOLD
    }
    assert set(refined) == expected
    for c_id, similarity in refined.items():
        assert similarity == pytest.approx(exact_everything[c_id])

    report_writer(
        "pipeline_screening",
        f"exact-everything: {exact_cost:.2f}s over {len(suite)} couples; "
        f"screen+refine: {pipeline_cost:.2f}s with {len(refined)} couples "
        f"refined (threshold {THRESHOLD:.0%})",
    )
