"""Batch engine benchmark: serial vs parallel vs cache-warm top-k.

The broadcast scenario (Section 1.2 ii.b) at platform scale: a fleet of
communities spread over distinct activity bands (families perturbing
shared archetypes, bands far apart in like-counts), ranked for the
global top-k most similar pairs.  Four executions of the identical
workload are timed:

* ``reference`` — the pre-engine serial ``top_k_pairs`` loop (no
  envelope screen, no cache, in-process);
* ``engine_serial`` — the batch engine at ``n_jobs=1``;
* ``engine_parallel`` — the batch engine at ``n_jobs=4`` over the
  shared-memory vector store;
* ``engine_cached`` — a second engine run against a warm join cache.

All four must produce byte-identical pair rankings (asserted via a
canonical JSON serialisation), and at full scale the parallel engine
must beat the reference path.  Results are recorded in
``BENCH_engine.json`` at the repository root.

Runs are marked with the ``bench`` marker and excluded from tier-1;
``scripts/bench_smoke.sh`` runs a tiny-scale variant (which skips the
speedup assertion — at toy sizes fixed pool overhead dominates).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps import top_k_pairs, top_k_pairs_reference
from repro.core.types import Community
from repro.engine import (
    BatchEngine,
    FaultPolicy,
    FaultSpec,
    JoinResultCache,
    PairJob,
)
from repro.obs import MetricsRegistry
from repro.testing import banded_community_fleet

#: Workload knobs (overridable for the smoke-scale run).
BANDS = int(os.environ.get("REPRO_BENCH_ENGINE_BANDS", 12))
PER_BAND = int(os.environ.get("REPRO_BENCH_ENGINE_PER_BAND", 4))
USERS = int(os.environ.get("REPRO_BENCH_ENGINE_USERS", 200))
DIMS = int(os.environ.get("REPRO_BENCH_ENGINE_DIMS", 8))
EPSILON = int(os.environ.get("REPRO_BENCH_ENGINE_EPSILON", 2))
TOP_K = int(os.environ.get("REPRO_BENCH_ENGINE_K", 10))
N_JOBS = int(os.environ.get("REPRO_BENCH_ENGINE_N_JOBS", 4))
#: Smoke mode checks correctness only (pool overhead dominates tiny runs).
SMOKE = os.environ.get("REPRO_BENCH_ENGINE_SMOKE", "0") == "1"

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def build_fleet(seed: int = 7) -> list[Community]:
    """Communities in ``BANDS`` activity bands of ``PER_BAND`` members.

    Members of a band perturb the same archetype matrix (real join work,
    non-trivial similarity); bands are separated by far more than
    epsilon in every dimension, so inter-band pairs are exactly the
    envelope pre-screen's provably-zero case.
    """
    return banded_community_fleet(
        BANDS,
        PER_BAND,
        users=USERS,
        dims=DIMS,
        seed=seed,
        band_gap=600,
        high=40,
        name_format="band{band:02d}-m{member}",
    )


def ranking_bytes(scores) -> bytes:
    """Canonical byte serialisation of a top-k ranking."""
    return json.dumps(
        [
            {
                "name_b": score.name_b,
                "name_a": score.name_a,
                "similarity": repr(score.similarity),
                "matching": score.result.pair_tuples(),
            }
            for score in scores
        ],
        sort_keys=True,
    ).encode()


def timed(label: str, func):
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    print(f"  {label:16s} {elapsed:8.3f}s")
    return result, elapsed


@pytest.mark.bench
def bench_engine_batch(report_writer):
    fleet = build_fleet()
    kwargs = dict(epsilon=EPSILON, k=TOP_K)

    reference, t_reference = timed(
        "reference", lambda: top_k_pairs_reference(fleet, **kwargs)
    )
    serial, t_serial = timed(
        "engine n_jobs=1", lambda: top_k_pairs(fleet, n_jobs=1, **kwargs)
    )
    parallel, t_parallel = timed(
        f"engine n_jobs={N_JOBS}",
        lambda: top_k_pairs(fleet, n_jobs=N_JOBS, **kwargs),
    )
    cache = JoinResultCache(max_entries=4096)
    timed("cache cold fill", lambda: top_k_pairs(fleet, cache=cache, **kwargs))
    cached, t_cached = timed(
        "engine cache-warm", lambda: top_k_pairs(fleet, cache=cache, **kwargs)
    )

    # Telemetry overhead: the serial engine with the registry disabled
    # (the default) must stay within noise of the baseline serial run —
    # the disabled path is one ``is None`` test per hook.  The enabled
    # run is informational.  A shared-CPU runner drifts several percent
    # between measurements taken minutes apart, so interleave fresh
    # baseline/off/on triples and take best-of-three of each rather than
    # comparing against the earlier ``t_serial`` measurement.
    baseline_runs, disabled_runs, enabled_runs = [], [], []
    for _ in range(3):
        baseline_runs.append(
            timed("serial baseline", lambda: top_k_pairs(fleet, **kwargs))[1]
        )
        disabled_runs.append(
            timed("serial telemetry-off", lambda: top_k_pairs(fleet, **kwargs))[1]
        )
        registry = MetricsRegistry()
        with_telemetry, t_enabled_run = timed(
            "serial telemetry-on",
            lambda: top_k_pairs(fleet, metrics=registry, **kwargs),
        )
        enabled_runs.append(t_enabled_run)
    t_baseline = min(baseline_runs)
    t_disabled = min(disabled_runs)
    t_enabled = min(enabled_runs)
    disabled_overhead_pct = 100.0 * (t_disabled / t_baseline - 1.0)
    enabled_overhead_pct = 100.0 * (t_enabled / min(t_baseline, t_disabled) - 1.0)

    expected = ranking_bytes(reference)
    assert ranking_bytes(serial) == expected
    assert ranking_bytes(parallel) == expected
    assert ranking_bytes(cached) == expected
    assert ranking_bytes(with_telemetry) == expected
    assert registry.counter("repro_engine_jobs_total", disposition="computed") > 0
    assert cache.hits > 0

    n_communities = len(fleet)
    payload = {
        "workload": {
            "communities": n_communities,
            "bands": BANDS,
            "per_band": PER_BAND,
            "users_per_community": USERS,
            "dims": DIMS,
            "epsilon": EPSILON,
            "k": TOP_K,
            "all_pairs": n_communities * (n_communities - 1) // 2,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "n_jobs": N_JOBS,
            "smoke": SMOKE,
        },
        "seconds": {
            "reference_serial_topk": round(t_reference, 4),
            "engine_serial": round(t_serial, 4),
            "engine_parallel": round(t_parallel, 4),
            "engine_cache_warm": round(t_cached, 4),
        },
        "speedup_vs_reference": {
            "engine_serial": round(t_reference / t_serial, 2),
            "engine_parallel": round(t_reference / t_parallel, 2),
            "engine_cache_warm": round(t_reference / t_cached, 2),
        },
        "cache": cache.stats(),
        "telemetry": {
            "serial_disabled_seconds": round(t_disabled, 4),
            "serial_enabled_seconds": round(t_enabled, 4),
            "disabled_overhead_pct_vs_baseline": round(disabled_overhead_pct, 2),
            "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        },
        "rankings_byte_identical": True,
    }
    report = json.dumps(payload, indent=2)
    report_writer("engine_batch", report)
    if not SMOKE:
        _JSON_PATH.write_text(report + "\n")
        print(f"[results recorded in {_JSON_PATH}]")
        assert t_parallel < t_reference, (
            f"parallel engine ({t_parallel:.3f}s) did not beat the serial "
            f"reference top-k path ({t_reference:.3f}s)"
        )
        assert disabled_overhead_pct < 5.0, (
            f"telemetry-disabled serial run drifted {disabled_overhead_pct:.1f}% "
            f"from the baseline serial run (must stay under 5%)"
        )


@pytest.mark.bench
def bench_engine_sweep_cache(report_writer):
    """Repeated epsilon sweeps: the join cache removes the second pass."""
    from repro.analysis.sweeps import epsilon_sweep

    fleet = build_fleet()
    community_b, community_a = fleet[0], fleet[1]
    epsilons = sorted({0, 1, EPSILON, 2 * EPSILON, 4 * EPSILON})
    cache = JoinResultCache(max_entries=1024)

    cold, t_cold = timed(
        "sweep cold",
        lambda: epsilon_sweep(
            community_b, community_a, epsilons=epsilons, cache=cache
        ),
    )
    warm, t_warm = timed(
        "sweep warm",
        lambda: epsilon_sweep(
            community_b, community_a, epsilons=epsilons, cache=cache
        ),
    )
    assert [p.similarity_percent for p in cold] == [
        p.similarity_percent for p in warm
    ]
    assert cache.hits >= len(epsilons)
    report_writer(
        "engine_sweep_cache",
        f"epsilon sweep x{len(epsilons)}: cold {t_cold:.3f}s, "
        f"warm {t_warm:.3f}s ({cache.stats()})",
    )


def _strip_timings(result) -> dict:
    payload = result.to_dict()
    payload.pop("elapsed_seconds", None)
    payload.pop("stage_seconds", None)
    return payload


@pytest.mark.bench
def bench_engine_faults(report_writer):
    """Supervision overhead on a clean run, plus the retry path.

    Times the same intra-band batch three ways — unsupervised, under a
    :class:`FaultPolicy` with no fault, and under the same policy with
    one injected transient crash (one retry) — and asserts the result
    payloads stay identical throughout.  The section merges into
    ``BENCH_engine.json`` (written earlier by ``bench_engine_batch``)
    when not in smoke mode.
    """
    fleet = build_fleet()
    policy = FaultPolicy(retries=2, backoff_base=0.001, backoff_cap=0.01, jitter=0.0)
    jobs = [
        PairJob.build(band * PER_BAND, band * PER_BAND + 1, "ex-minmax", EPSILON)
        for band in range(BANDS)
    ]

    def run_batch(fault_policy, injector):
        with BatchEngine(
            fleet,
            n_jobs=N_JOBS,
            screen=False,
            fault_policy=fault_policy,
            fault_injector=injector,
        ) as engine:
            outcomes = engine.run(jobs)
            return [o.result for o in outcomes], engine.stats()

    (plain, _), t_plain = timed(
        "batch unsupervised", lambda: run_batch(None, None)
    )
    (clean, _), t_supervised = timed(
        "batch supervised", lambda: run_batch(policy, None)
    )
    (retried, stats), t_retry = timed(
        "batch retry-path",
        lambda: run_batch(policy, FaultSpec(mode="raise", at=0, fail_attempts=1)),
    )
    expected = [_strip_timings(result) for result in plain]
    assert [_strip_timings(result) for result in clean] == expected
    assert [_strip_timings(result) for result in retried] == expected
    assert stats["faults"]["retries"] == 1
    assert stats["faults"]["quarantined"] == 0

    section = {
        "jobs": len(jobs),
        "n_jobs": N_JOBS,
        "policy": {"retries": policy.retries, "timeout": policy.timeout},
        "seconds": {
            "unsupervised": round(t_plain, 4),
            "supervised_clean": round(t_supervised, 4),
            "supervised_one_retry": round(t_retry, 4),
        },
        "supervision_overhead_pct": round(
            100.0 * (t_supervised / t_plain - 1.0), 2
        ),
        "retry_overhead_pct": round(100.0 * (t_retry / t_supervised - 1.0), 2),
        "results_identical": True,
    }
    report_writer("engine_faults", json.dumps(section, indent=2))
    if not SMOKE and _JSON_PATH.exists():
        merged = json.loads(_JSON_PATH.read_text())
        merged["faults"] = section
        _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"[faults section merged into {_JSON_PATH}]")
