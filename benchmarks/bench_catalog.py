"""Persistent-catalog benchmark: indexed screening and lazy cold starts.

Three measurements on a catalog-scale banded fleet persisted into one
SQLite database (the ``PersistentCatalog`` store):

* **cold start** — a fresh handle answering one candidate-window probe
  plus one vector load, versus hydrating the whole fleet into memory
  the way a list-based ``top_k_pairs`` caller must.  The probe touches
  O(survivors) index rows and exactly one vector blob, so its cost
  stays flat as the catalog grows while full hydration scales with the
  store.
* **screening working set** — one full ``candidate_pairs`` sweep over
  every stored community.  The sweep reads envelope columns only; the
  recorded ``vector_bytes_loaded`` stays zero against megabytes of
  stored vectors, which is what makes sweeps over a bigger-than-RAM
  catalog feasible: the resident working set is the index rows, not
  the corpus.
* **end to end** — ``top_k_pairs`` straight off the catalog versus the
  same ranking over the pre-loaded list.  The rankings must match
  pair for pair; the catalog run additionally records how many of the
  stored communities ever had their vectors paged in.

The ``catalog`` section merges into ``BENCH_engine.json`` (written by
``bench_engine_batch``) when not in smoke mode.  Runs carry the
``bench`` marker and are excluded from tier-1; ``scripts/bench_smoke.sh``
runs the seconds-long smoke variant.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

import pytest

from repro.apps import top_k_pairs
from repro.catalog import PersistentCatalog
from repro.core.types import Community
from repro.engine.envelope import community_envelope, envelopes_separated
from repro.testing import banded_community_fleet

#: Workload knobs (overridable for the smoke-scale run).
BANDS = int(os.environ.get("REPRO_BENCH_CATALOG_BANDS", 400))
PER_BAND = int(os.environ.get("REPRO_BENCH_CATALOG_PER_BAND", 5))
USERS = int(os.environ.get("REPRO_BENCH_CATALOG_USERS", 16))
DIMS = int(os.environ.get("REPRO_BENCH_CATALOG_DIMS", 6))
EPSILON = int(os.environ.get("REPRO_BENCH_CATALOG_EPSILON", 2))
TOP_K = int(os.environ.get("REPRO_BENCH_CATALOG_K", 10))
#: Smoke mode checks correctness only and skips the JSON merge.
SMOKE = os.environ.get("REPRO_BENCH_CATALOG_SMOKE", "0") == "1"

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

pytestmark = pytest.mark.catalog


def build_fleet(seed: int = 7) -> list[Community]:
    return banded_community_fleet(
        BANDS,
        PER_BAND,
        users=USERS,
        dims=DIMS,
        seed=seed,
        band_gap=600,
        high=40,
        name_format="band{band:03d}-m{member}",
    )


def timed(label: str, func):
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    print(f"  {label:28s} {elapsed:8.3f}s")
    return result, elapsed


def ranking_key(scores) -> list[tuple[str, str, str]]:
    return [(s.name_b, s.name_a, repr(s.similarity)) for s in scores]


@pytest.mark.bench
def bench_catalog(tmp_path_factory, report_writer):
    fleet = build_fleet()
    n_communities = len(fleet)
    path = tmp_path_factory.mktemp("catalog") / "bench.db"

    with PersistentCatalog(path) as writer:
        _, t_register = timed(
            "bulk register",
            lambda: writer.register_many({c.name: c for c in fleet}),
        )
        storage = writer.storage_stats()
    vector_bytes = storage["vector_bytes"]
    bytes_per_community = vector_bytes // n_communities

    # -- cold start: O(touched rows), not O(catalog) -------------------
    probe = fleet[n_communities // 2].name

    def cold_probe():
        with PersistentCatalog(path) as cold:
            survivors = cold.window_candidates(
                cold.envelope(probe), EPSILON, exclude=probe
            )
            community = cold.get(probe)
            stats = cold.io_stats()
        return survivors, community, stats

    (survivors, _, cold_stats), t_cold = timed("cold probe + 1 load", cold_probe)
    assert cold_stats["repro_catalog_vector_loads_total"] == 1
    rows_scanned = cold_stats["repro_catalog_rows_scanned_total"]
    if not SMOKE:
        assert rows_scanned < n_communities / 10

    def full_hydration():
        with PersistentCatalog(path) as cold:
            return [cold.get(key) for key in cold.keys()]

    hydrated, t_hydrate = timed("full hydration", full_hydration)
    assert len(hydrated) == n_communities

    # The probe's survivor set is exactly the in-memory envelope screen.
    envelopes = {c.name: community_envelope(c) for c in fleet}
    expected = sorted(
        other.name
        for other in fleet
        if other.name != probe
        and not envelopes_separated(envelopes[probe], envelopes[other.name], EPSILON)
    )
    assert survivors == expected

    # -- screening working set: all-pairs sweep, zero vector bytes ----
    with PersistentCatalog(path) as reader:
        pairs, t_sweep = timed(
            "all-pairs window sweep", lambda: reader.candidate_pairs(EPSILON)
        )
        sweep_stats = reader.io_stats()
    assert sweep_stats["repro_catalog_vector_loads_total"] == 0
    expected_pairs = {
        (first.name, second.name)
        for first, second in itertools.combinations(
            sorted(fleet, key=lambda c: c.name), 2
        )
        if not envelopes_separated(
            envelopes[first.name], envelopes[second.name], EPSILON
        )
    }
    assert set(pairs) == expected_pairs

    # -- end to end: catalog-backed vs pre-loaded top-k ----------------
    baseline, t_topk_memory = timed(
        "top-k over loaded list",
        lambda: top_k_pairs(fleet, epsilon=EPSILON, k=TOP_K),
    )
    with PersistentCatalog(path) as reader:
        scores, t_topk_catalog = timed(
            "top-k over catalog",
            lambda: top_k_pairs(reader, epsilon=EPSILON, k=TOP_K),
        )
        topk_loads = reader.io_stats()["repro_catalog_vector_loads_total"]
    assert ranking_key(scores) == ranking_key(baseline)

    section = {
        "workload": {
            "communities": n_communities,
            "bands": BANDS,
            "per_band": PER_BAND,
            "users_per_community": USERS,
            "dims": DIMS,
            "epsilon": EPSILON,
            "k": TOP_K,
            "smoke": SMOKE,
        },
        "storage": {
            "vector_bytes": vector_bytes,
            "bytes_per_community": bytes_per_community,
            "bulk_register_seconds": round(t_register, 4),
        },
        "cold_start": {
            "probe_plus_one_load_seconds": round(t_cold, 4),
            "full_hydration_seconds": round(t_hydrate, 4),
            "speedup_vs_hydration": round(t_hydrate / t_cold, 2),
            "index_rows_scanned": rows_scanned,
            "vector_loads": 1,
            "survivors": len(survivors),
        },
        "all_pairs_sweep": {
            "seconds": round(t_sweep, 4),
            "surviving_pairs": len(pairs),
            "vector_bytes_loaded": 0,
            "vector_bytes_on_disk": vector_bytes,
        },
        "top_k": {
            "catalog_seconds": round(t_topk_catalog, 4),
            "in_memory_seconds": round(t_topk_memory, 4),
            "communities_loaded": topk_loads,
            "communities_stored": n_communities,
            "ranking_identical": True,
        },
    }
    report = json.dumps(section, indent=2)
    report_writer("catalog", report)
    if not SMOKE:
        assert t_cold < t_hydrate, (
            f"cold probe ({t_cold:.3f}s) must beat full hydration "
            f"({t_hydrate:.3f}s)"
        )
        if _JSON_PATH.exists():
            merged = json.loads(_JSON_PATH.read_text())
            merged["catalog"] = section
            _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
            print(f"[catalog section merged into {_JSON_PATH}]")
