"""Population-mode couples: the organic counterpart of the case studies.

The paper selected its 20 couples "in an exploration way under the
realistic settings of VK" until the 15%/30% bands were hit.  The
population subscription model derives couples without any engineering;
this bench verifies that the organic similarities land in the same
bands — same-category couples around the 30% case-study threshold,
different-category couples near the 15% one, and same > different.
"""

from __future__ import annotations

import pytest

from repro import csj_similarity
from repro.datasets import VKGenerator

POPULATION = 3_000
SIZE_B, SIZE_A = 450, 600


@pytest.fixture(scope="module")
def organic_couples(bench_seed):
    generator = VKGenerator(seed=bench_seed)
    same = generator.make_population_couple(
        population_size=POPULATION,
        size_b=SIZE_B,
        size_a=SIZE_A,
        category_b="Sport",
        category_a="Sport",
        drift=1,
        seed_key="bench-same",
    )
    different = generator.make_population_couple(
        population_size=POPULATION,
        size_b=SIZE_B,
        size_a=SIZE_A,
        category_b="Sport",
        category_a="Food_recipes",
        drift=1,
        seed_key="bench-diff",
    )
    return same, different


def bench_population_couples(benchmark, organic_couples, report_writer):
    same, different = organic_couples

    def join_both():
        return (
            csj_similarity(*same, epsilon=1, method="ex-minmax"),
            csj_similarity(*different, epsilon=1, method="ex-minmax"),
        )

    same_result, different_result = benchmark.pedantic(
        join_both, rounds=1, iterations=1
    )
    report_writer(
        "population_mode",
        "organic (population-mode) couples:\n"
        f"  same category:      {same_result.similarity_percent:.2f}%\n"
        f"  different category: {different_result.similarity_percent:.2f}%",
    )

    assert same_result.similarity > different_result.similarity
    # The paper's case-study bands emerge without engineering.
    assert same_result.similarity >= 0.20
    assert different_result.similarity >= 0.08
