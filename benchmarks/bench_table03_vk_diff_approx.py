"""Table 3: approximate methods, VK dataset, different categories.

Paper shape: Ap-MinMax and Ap-Baseline are nearly tied on accuracy,
Ap-SuperEGO loses accuracy through its normalised aggregate-epsilon
conversion, and every couple sits in the >= 15% similarity band.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table03(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 3, report_writer, scale=bench_scale, seed=bench_seed
    )

    def mean(method: str) -> float:
        return sum(row.similarity_percent(method) for row in run.rows) / len(run.rows)

    assert mean("ap-superego") < mean("ap-minmax")
    assert mean("ap-superego") < mean("ap-baseline")
    assert abs(mean("ap-minmax") - mean("ap-baseline")) < 1.0
    for row in run.rows:
        assert row.similarity_percent("ap-minmax") >= 12.0
