"""Table 7: approximate methods, Synthetic dataset, different categories.

Paper shape: on uniform data the three approximate methods converge in
accuracy (the aggregate-epsilon conversion barely hurts Ap-SuperEGO),
and cID 10 is the edge case whose similarity drops below 15%.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table07(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 7, report_writer, scale=bench_scale, seed=bench_seed
    )

    def mean(method: str) -> float:
        return sum(row.similarity_percent(method) for row in run.rows) / len(run.rows)

    # Accuracy convergence: all three within one point on average.
    values = [mean(method) for method in run.methods]
    assert max(values) - min(values) < 1.0

    edge = next(row for row in run.rows if row.spec.c_id == 10)
    assert edge.similarity_percent("ap-minmax") < 15.0
