"""Ablation B: CSF vs Hopcroft–Karp maximum matching.

The paper's CSF (CoverSmallestFirst) is a minimum-degree greedy
heuristic; the library also ships exact Hopcroft–Karp.  This bench
measures both the time cost of exactness and how close CSF gets to the
true maximum on realistic couples (it is typically optimal or within a
fraction of a percent).
"""

from __future__ import annotations

import pytest

from repro import ExMinMax
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

MATCHERS = ("csf", "hopcroft_karp")


@pytest.fixture(scope="module")
def standard_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    # cID 13 (Sport | Sport) has the densest candidate graph of the suite.
    spec = next(s for s in PAPER_COUPLES if s.c_id == 13)
    return build_couple(spec, generator, scale=bench_scale)


@pytest.mark.parametrize("matcher", MATCHERS)
def bench_matcher(benchmark, matcher, standard_couple):
    community_b, community_a = standard_couple
    algorithm = ExMinMax(VK_EPSILON, matcher=matcher)
    result = benchmark(algorithm.join, community_b, community_a)
    benchmark.extra_info["matched"] = result.n_matched


def bench_matcher_gap_report(benchmark, standard_couple, report_writer):
    community_b, community_a = standard_couple

    def sweep():
        counts = {}
        for matcher in MATCHERS:
            algorithm = ExMinMax(VK_EPSILON, matcher=matcher)
            counts[matcher] = algorithm.join(community_b, community_a).n_matched
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert counts["csf"] <= counts["hopcroft_karp"]
    assert counts["csf"] >= 0.98 * counts["hopcroft_karp"], (
        "CSF should be near-optimal on realistic couples"
    )
    gap = counts["hopcroft_karp"] - counts["csf"]
    report_writer(
        "ablation_matcher",
        f"CSF matched {counts['csf']}, Hopcroft-Karp matched "
        f"{counts['hopcroft_karp']} (gap {gap} pairs)",
    )
