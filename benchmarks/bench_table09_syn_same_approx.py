"""Table 9: approximate methods, Synthetic dataset, same categories.

Same trend as Table 7 on the >= 30% couples; execution times rise with
the doubled similarity, accuracies of the three methods stay close.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table09(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 9, report_writer, scale=bench_scale, seed=bench_seed
    )

    def mean(method: str) -> float:
        return sum(row.similarity_percent(method) for row in run.rows) / len(run.rows)

    values = [mean(method) for method in run.methods]
    assert max(values) - min(values) < 1.0
    for row in run.rows:
        assert row.similarity_percent("ap-minmax") >= 25.0
