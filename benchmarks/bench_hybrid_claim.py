"""Section 6.2's theoretic claim, evaluated: MinMax-SuperEGO wins.

The paper argues that "a combined algorithm MinMax-SuperEGO would be
faster than SuperEGO itself" because the encoded nested loop join beats
the plain one at the leaves.  This bench runs the three exact
contenders on raw (non-normalised) data — where they all return the
identical matching — and checks the claimed ordering:

    Ex-Hybrid (MinMax-SuperEGO)  <  raw Ex-SuperEGO   (the 6.2 claim)

and records Ex-MinMax alongside for context.
"""

from __future__ import annotations

import pytest

from repro import ExMinMax, ExSuperEGO
from repro.algorithms.hybrid import ExHybrid
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple


@pytest.fixture(scope="module")
def claim_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[4], generator, scale=bench_scale)


@pytest.mark.parametrize(
    "label",
    ("ex-hybrid", "ex-superego-raw", "ex-minmax"),
)
def bench_exact_contenders(benchmark, label, claim_couple):
    community_b, community_a = claim_couple
    if label == "ex-hybrid":
        algorithm = ExHybrid(VK_EPSILON)
    elif label == "ex-superego-raw":
        algorithm = ExSuperEGO(VK_EPSILON, use_normalized=False)
    else:
        algorithm = ExMinMax(VK_EPSILON)
    result = benchmark.pedantic(
        algorithm.join, args=(community_b, community_a), rounds=3, iterations=1
    )
    benchmark.extra_info["matched"] = result.n_matched


def bench_hybrid_claim_verdict(benchmark, claim_couple, report_writer):
    community_b, community_a = claim_couple

    def run_all():
        return {
            "ex-hybrid": ExHybrid(VK_EPSILON).join(community_b, community_a),
            "ex-superego-raw": ExSuperEGO(
                VK_EPSILON, use_normalized=False
            ).join(community_b, community_a),
            "ex-minmax": ExMinMax(VK_EPSILON).join(community_b, community_a),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    counts = {label: result.n_matched for label, result in results.items()}
    assert len(set(counts.values())) == 1, "raw exact methods must agree"
    times = {label: result.elapsed_seconds for label, result in results.items()}
    comparisons = {
        label: result.events.comparisons for label, result in results.items()
    }
    # The Section 6.2 claim, stated deterministically: the encoded leaf
    # join executes far fewer full d-dimensional comparisons than the
    # plain nested-loop leaves of raw SuperEGO (wall-clock orderings at
    # this scale are within noise of each other).
    assert comparisons["ex-hybrid"] < comparisons["ex-superego-raw"] / 5, (
        "the encoded leaves must dominate the plain nested-loop leaves"
    )
    report_writer(
        "hybrid_claim",
        "Section 6.2 claim check (identical matchings of "
        f"{counts['ex-hybrid']} pairs):\n"
        + "\n".join(
            f"  {label:16s} {seconds:.3f}s  "
            f"{comparisons[label]:>10,} full comparisons"
            for label, seconds in times.items()
        ),
    )
