"""Micro-benchmark: all six methods on one standard couple.

Gives pytest-benchmark's comparative statistics across the method suite
on the same input (cID 1, VK, bench scale) — the quickest way to see
the Table 3/4 time ordering on this machine.
"""

from __future__ import annotations

import pytest

from repro import ALL_METHODS, get_algorithm
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple


@pytest.fixture(scope="module")
def standard_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[0], generator, scale=bench_scale)


@pytest.mark.parametrize("method", ALL_METHODS)
def bench_method(benchmark, method, standard_couple):
    community_b, community_a = standard_couple
    algorithm = get_algorithm(method, VK_EPSILON)
    result = benchmark(algorithm.join, community_b, community_a)
    assert 0.0 <= result.similarity <= 1.0
