"""Serving-layer load benchmark: throughput, latency tails, shedding.

Two phases against a :class:`~repro.serve.ServerThread`:

* **closed loop** — ``CLIENTS`` threads, each with its own TCP
  connection, issue ``REQUESTS`` joins back-to-back over seeded random
  community pairs; the run records requests/second and the p50/p95/p99
  latency percentiles.
* **burst / shed** — a server with a tight admission bound
  (``max_pending=2``) and a single-worker executor parked on an event
  gate receives a burst wider than the bound; every request beyond the
  bound must be shed with an explicit ``overloaded`` + ``retry_after_ms``
  response (``repro_serve_shed_total`` increments, the loop stays
  alive), and after the gate opens the backlog drains and the service
  answers again.

Results merge into ``BENCH_engine.json`` (written by
``bench_engine_batch``) as the ``"serve"`` section when not in smoke
mode.  ``scripts/bench_smoke.sh`` runs the tiny-scale variant.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from random import Random

import pytest

from repro.serve import (
    AdmissionPolicy,
    CommunityStore,
    OverloadedError,
    ServeClient,
    ServeConfig,
    ServerThread,
    decode_response,
    encode_request,
)
from repro.testing import banded_community_fleet

#: Workload knobs (overridable for the smoke-scale run).
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", 4))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", 100))
BANDS = int(os.environ.get("REPRO_BENCH_SERVE_BANDS", 4))
PER_BAND = int(os.environ.get("REPRO_BENCH_SERVE_PER_BAND", 3))
USERS = int(os.environ.get("REPRO_BENCH_SERVE_USERS", 120))
DIMS = int(os.environ.get("REPRO_BENCH_SERVE_DIMS", 6))
EPSILON = int(os.environ.get("REPRO_BENCH_SERVE_EPSILON", 30))
BURST = int(os.environ.get("REPRO_BENCH_SERVE_BURST", 12))
#: Smoke mode skips the BENCH_engine.json merge (numbers are toy-scale).
SMOKE = os.environ.get(
    "REPRO_BENCH_SERVE_SMOKE", os.environ.get("REPRO_BENCH_ENGINE_SMOKE", "0")
) == "1"

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _store() -> CommunityStore:
    store = CommunityStore()
    for community in banded_community_fleet(
        BANDS, PER_BAND, users=USERS, dims=DIMS, seed=7, name_format="b{band}m{member}"
    ):
        store.register_community(community)
    return store


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@pytest.mark.bench
@pytest.mark.serve
def bench_serve_closed_loop(report_writer):
    """Closed-loop join throughput and latency percentiles."""
    store = _store()
    names = store.names()
    pairs = [
        (first, second)
        for i, first in enumerate(names)
        for second in names[i + 1 :]
    ]

    def run_client(client_id: int, address, latencies: list[float]) -> None:
        rng = Random(1000 + client_id)
        with ServeClient(*address) as client:
            for _ in range(REQUESTS):
                first, second = rng.choice(pairs)
                started = time.perf_counter()
                client.join(first, second, epsilon=EPSILON)
                latencies.append(time.perf_counter() - started)

    with ServerThread(store=store) as st:
        per_client: list[list[float]] = [[] for _ in range(CLIENTS)]
        threads = [
            threading.Thread(
                target=run_client, args=(i, st.address, per_client[i])
            )
            for i in range(CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        with ServeClient(*st.address) as client:
            stats = client.stats()

    latencies = sorted(lat for lats in per_client for lat in lats)
    total = len(latencies)
    assert total == CLIENTS * REQUESTS
    assert stats["requests_by_status"].get("ok", 0) >= total
    throughput = total / elapsed
    section = {
        "workload": {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS,
            "communities": len(names),
            "users_per_community": USERS,
            "dims": DIMS,
            "epsilon": EPSILON,
        },
        "requests_total": total,
        "elapsed_seconds": round(elapsed, 4),
        "requests_per_second": round(throughput, 2),
        "latency_ms": {
            "p50": round(1000 * _percentile(latencies, 0.50), 3),
            "p95": round(1000 * _percentile(latencies, 0.95), 3),
            "p99": round(1000 * _percentile(latencies, 0.99), 3),
            "max": round(1000 * latencies[-1], 3),
        },
        "dispositions": stats["requests_by_status"],
        "cache": stats.get("cache", {}),
        "smoke": SMOKE,
    }
    print(
        f"  closed loop: {total} joins in {elapsed:.3f}s "
        f"({throughput:.0f} req/s, p50 {section['latency_ms']['p50']}ms, "
        f"p99 {section['latency_ms']['p99']}ms)"
    )
    report_writer("serve_load", json.dumps(section, indent=2))
    if not SMOKE and _JSON_PATH.exists():
        merged = json.loads(_JSON_PATH.read_text())
        merged.setdefault("serve", {})["closed_loop"] = section
        _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"[serve section merged into {_JSON_PATH}]")


@pytest.mark.bench
@pytest.mark.serve
def bench_serve_burst_shedding(report_writer):
    """A burst over the queue bound sheds explicitly, then recovers."""
    gate = threading.Event()
    executor = ThreadPoolExecutor(max_workers=1)
    executor.submit(gate.wait)  # park the only worker
    config = ServeConfig(
        admission=AdmissionPolicy(max_pending=2, queue_retry_after_ms=25.0)
    )
    try:
        with ServerThread(config, store=_store(), executor=executor) as st:
            server = st.server
            names = server.store.names()
            args = {"first": names[0], "second": names[1], "epsilon": EPSILON}

            # Fill the pending bound with parked joins (admitted, queued
            # behind the blocked worker), without reading responses yet.
            parked = []
            for rid in range(2):
                sock = socket.create_connection(st.address, timeout=30)
                sock.sendall(encode_request("join", args, request_id=rid))
                parked.append(sock)
            deadline = time.monotonic() + 10
            while server.admission.pending < 2:
                assert time.monotonic() < deadline, "backlog never built"
                time.sleep(0.005)

            shed = 0
            with ServeClient(*st.address) as client:
                for _ in range(BURST):
                    try:
                        client.join(names[0], names[1], epsilon=EPSILON)
                    except OverloadedError as exc:
                        assert exc.retry_after_ms == 25.0
                        shed += 1
                # every burst request beyond the bound was shed
                assert shed == BURST
                stats = client.stats()  # monitoring plane still answers
                assert stats["shed_by_reason"]["queue_full"] == BURST
                assert stats["admission"]["pending"] == 2

                gate.set()  # drain
                for sock in parked:
                    response = decode_response(sock.makefile("rb").readline())
                    assert response["ok"], response
                    sock.close()
                recovered = client.join(names[0], names[1], epsilon=EPSILON)
                assert recovered["disposition"] in ("computed", "cached")

            section = {
                "burst": BURST,
                "max_pending": 2,
                "shed": shed,
                "shed_by_reason": stats["shed_by_reason"],
                "recovered": True,
            }
            print(f"  burst: {shed}/{BURST} shed at max_pending=2, recovered")
            report_writer("serve_shedding", json.dumps(section, indent=2))
            if not SMOKE and _JSON_PATH.exists():
                merged = json.loads(_JSON_PATH.read_text())
                merged.setdefault("serve", {})["burst_shedding"] = section
                _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    finally:
        gate.set()
        executor.shutdown(wait=False)
