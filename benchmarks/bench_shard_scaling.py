"""Shard-count scaling of the distributed all-pairs top-k.

The workload is built to stress the stage the sharding actually
distributes: the quadratic candidate scan.  Every community's counter
sums are (near-)identical — group ``g`` sits at ``[g*step,
(G-1-g)*step]`` per user, a constant row sum — so the catalog's
sum-window index prunes nothing and stage 1 of ``candidate_pairs``
walks all ``C(C, 2)`` index rows, decoding envelopes in Python.  The
per-dimension check then kills every inter-group pair (``step`` is
far above epsilon plus noise), leaving only the cheap intra-group
joins.  Partitioning ``N`` ways cuts the scan to ``C^2/2N`` total rows
— a genuine work reduction, so the speedup survives even on one core
where thread fan-out alone would buy nothing.

Measured per shard count (1/2/4/8 by default): the full distributed
``top_k`` through an in-process fleet, each run asserted byte-identical
to the single-host ranking on the union catalog.  A skewed variant
(one hot component dwarfing the per-shard budget) compares the
skew-aware split against plain LPT at 4 shards.

The ``shard`` section merges into ``BENCH_engine.json`` when not in
smoke mode; ``scripts/bench_smoke.sh`` runs the seconds-long variant.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps import top_k_pairs
from repro.catalog import PersistentCatalog
from repro.core.types import Community
from repro.shard import ShardFleet, partition_catalog, plan_partition

#: Workload knobs (overridable for the smoke-scale run).
GROUPS = int(os.environ.get("REPRO_BENCH_SHARD_GROUPS", 512))
PER_GROUP = int(os.environ.get("REPRO_BENCH_SHARD_PER_GROUP", 4))
USERS = int(os.environ.get("REPRO_BENCH_SHARD_USERS", 8))
EPSILON = int(os.environ.get("REPRO_BENCH_SHARD_EPSILON", 4))
TOP_K = int(os.environ.get("REPRO_BENCH_SHARD_K", 10))
SHARD_COUNTS = tuple(
    int(n)
    for n in os.environ.get("REPRO_BENCH_SHARD_SHARDS", "1,2,4,8").split(",")
)
#: Smoke mode checks correctness only and skips the JSON merge.
SMOKE = os.environ.get("REPRO_BENCH_SHARD_SMOKE", "0") == "1"

STEP = 100  # inter-group gap per dimension, >> EPSILON + noise
NOISE = 8

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

pytestmark = pytest.mark.shard


def sum_balanced_fleet(seed: int = 7) -> list[Community]:
    """Constant-row-sum groups: worst case for the sum-window index."""
    rng = np.random.default_rng(seed)
    fleet = []
    for group in range(GROUPS):
        base = np.array([group * STEP, (GROUPS - 1 - group) * STEP])
        for member in range(PER_GROUP):
            vectors = base + rng.integers(0, NOISE, size=(USERS, 2))
            fleet.append(Community(f"g{group:04d}-m{member}", vectors))
    return fleet


def skewed_fleet(seed: int = 23) -> list[Community]:
    """Uniform groups plus one hot component above the shard budget."""
    fleet = sum_balanced_fleet(seed)[: max(8, GROUPS // 8) * PER_GROUP]
    rng = np.random.default_rng(seed + 1)
    hot_users = USERS * 12
    base = rng.integers(0, 20, size=(hot_users, 2)) + GROUPS * STEP + 10_000
    fleet.append(Community("hot-mega", base))
    for member in range(5):
        noise = rng.integers(-2, 3, size=(hot_users // 2, 2))
        fleet.append(
            Community(
                f"hot-p{member}",
                np.maximum(base[: hot_users // 2] + noise, 0),
            )
        )
    return fleet


def timed(label: str, func):
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    print(f"  {label:32s} {elapsed:8.3f}s")
    return result, elapsed


def ranking_key(scores) -> list[tuple[str, str, str]]:
    return [(s.name_b, s.name_a, repr(s.similarity)) for s in scores]


@pytest.mark.bench
def bench_shard_scaling(tmp_path_factory, report_writer):
    fleet = sum_balanced_fleet()
    root = tmp_path_factory.mktemp("shard_scaling")
    union_db = root / "union.db"

    with PersistentCatalog(union_db) as catalog:
        catalog.register_many({c.name: c for c in fleet})
        reference, t_single = timed(
            "single-host top-k (union)",
            lambda: top_k_pairs(catalog, epsilon=EPSILON, k=TOP_K),
        )
        # One union scan feeds every plan; each *distributed* run below
        # still pays its own shard-local scans inside top_k.
        candidates, t_scan = timed(
            "union candidate scan",
            lambda: catalog.candidate_pairs(EPSILON),
        )

    curve = {}
    baseline_seconds = None
    for n_shards in SHARD_COUNTS:
        shard_dir = root / f"shards_{n_shards}"
        with PersistentCatalog(union_db) as catalog:
            plan, t_partition = timed(
                f"partition {n_shards}-way",
                lambda: partition_catalog(
                    catalog,
                    shard_dir,
                    n_shards,
                    epsilon=EPSILON,
                    candidate_pairs=candidates,
                ),
            )
        with ShardFleet(shard_dir) as shards:
            with shards.coordinator() as coordinator:
                result, t_topk = timed(
                    f"distributed top-k ({n_shards} shards)",
                    lambda: coordinator.top_k(epsilon=EPSILON, k=TOP_K),
                )
        assert not result.degraded
        assert ranking_key(result.scores) == ranking_key(reference)
        if baseline_seconds is None:
            baseline_seconds = t_topk
        curve[n_shards] = {
            "topk_seconds": round(t_topk, 4),
            "partition_seconds": round(t_partition, 4),
            "speedup_vs_1_shard": round(baseline_seconds / t_topk, 2),
            "imbalance": round(plan.stats["imbalance"], 3),
        }

    # -- skew: replicated split vs plain LPT at 4 shards ---------------
    skew = skewed_fleet()
    skew_db = root / "skew.db"
    skew_section = {}
    with PersistentCatalog(skew_db) as catalog:
        catalog.register_many({c.name: c for c in skew})
        skew_reference = top_k_pairs(catalog, epsilon=EPSILON, k=TOP_K)
        lpt_plan = plan_partition(
            catalog, 4, epsilon=EPSILON, replicate=False
        )
        split_dir = root / "skew_split"
        split_plan, _ = timed(
            "skew partition (split)",
            lambda: partition_catalog(
                catalog, split_dir, 4, epsilon=EPSILON
            ),
        )
    with ShardFleet(split_dir) as shards:
        with shards.coordinator() as coordinator:
            skew_result, t_skew = timed(
                "skewed distributed top-k",
                lambda: coordinator.top_k(epsilon=EPSILON, k=TOP_K),
            )
    assert not skew_result.degraded
    assert ranking_key(skew_result.scores) == ranking_key(skew_reference)
    skew_section = {
        "communities": len(skew),
        "replicated_keys": len(split_plan.replicated),
        "split_components": split_plan.stats["split_components"],
        "imbalance_split": round(split_plan.stats["imbalance"], 3),
        "imbalance_lpt": round(lpt_plan.stats["imbalance"], 3),
        "topk_seconds": round(t_skew, 4),
        "ranking_identical": True,
    }
    assert (
        split_plan.stats["imbalance"] <= lpt_plan.stats["imbalance"]
    ), "splitting the hot component must not worsen balance"

    section = {
        "workload": {
            "communities": len(fleet),
            "groups": GROUPS,
            "per_group": PER_GROUP,
            "users_per_community": USERS,
            "epsilon": EPSILON,
            "k": TOP_K,
            "sum_balanced": True,
            "smoke": SMOKE,
        },
        "single_host": {
            "topk_seconds": round(t_single, 4),
            "candidate_scan_seconds": round(t_scan, 4),
            "candidate_pairs": len(candidates),
        },
        "scaling": {str(n): entry for n, entry in curve.items()},
        "skew": skew_section,
    }
    report = json.dumps(section, indent=2)
    report_writer("shard_scaling", report)

    if not SMOKE:
        if 4 in curve:
            speedup = curve[4]["speedup_vs_1_shard"]
            assert speedup >= 2.0, (
                f"4 shards must be >= 2x over 1 shard, got {speedup:.2f}x"
            )
        if _JSON_PATH.exists():
            merged = json.loads(_JSON_PATH.read_text())
            merged["shard"] = section
            _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
            print(f"[shard section merged into {_JSON_PATH}]")
