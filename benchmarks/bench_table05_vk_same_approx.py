"""Table 5: approximate methods, VK dataset, same categories.

Same trend as Table 3 but on the >= 30% similarity couples (11–20);
the higher similarity roughly doubles every method's work.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table05(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 5, report_writer, scale=bench_scale, seed=bench_seed
    )

    def mean(method: str) -> float:
        return sum(row.similarity_percent(method) for row in run.rows) / len(run.rows)

    assert mean("ap-superego") < mean("ap-minmax")
    for row in run.rows:
        # Same-category case study: the >= 30% band (loose margin for
        # the scaled-down communities).
        assert row.similarity_percent("ap-minmax") >= 25.0
