"""Figures 1–3: the encoding worked example and the MinMax event traces.

Figure 1 is a worked example of the encoding scheme (vector 46/28/73);
Figures 2 and 3 illustrate Ap-MinMax and Ex-MinMax runs as event
streams.  The bench regenerates all three: it verifies the Figure 1
values exactly and records full traces of both MinMax engines on a
small couple, writing them to benchmarks/output/.
"""

from __future__ import annotations

import numpy as np

from repro import ApMinMax, Community, ExMinMax, MinMaxEncoder
from repro.core.events import EventType

FIGURE1_VECTOR = np.array(
    [1, 0, 0, 0, 2, 2,
     0, 0, 2, 1, 1, 5, 4,
     0, 3, 0, 0, 1, 4, 1,
     0, 3, 5, 4, 1, 2, 4]
)


def bench_figure1_encoding(benchmark, report_writer):
    encoder = MinMaxEncoder(epsilon=1, n_parts=4)
    description = benchmark(encoder.describe, FIGURE1_VECTOR)

    assert description["parts"] == [5, 13, 9, 19]
    assert description["encoded_id"] == 46
    assert description["encoded_min"] == 28
    assert description["encoded_max"] == 73
    assert description["part_ranges"] == [(2, 11), (8, 20), (5, 16), (13, 26)]
    report_writer(
        "figure01",
        "Figure 1 check: parts=5,13,9,19 encoded_ID=46 "
        "encoded_Min=28 encoded_Max=73 (all exact)",
    )


def _trace_couple() -> tuple[Community, Community]:
    rng = np.random.default_rng(12)
    base = rng.integers(0, 6, size=(12, 8))
    perturbed = np.maximum(base + rng.integers(-1, 2, size=base.shape), 0)
    spread = rng.integers(0, 20, size=(12, 8))
    community_b = Community("B", np.maximum(base + spread // 9, 0))
    community_a = Community("A", np.concatenate([perturbed[:7], spread[:5]]))
    return community_b, community_a


def bench_figure2_verbatim_replay(benchmark, report_writer):
    """Replay the paper's exact Figure 2 scenario at the encoded level."""
    from repro.algorithms import (
        FIGURE2_A,
        FIGURE2_B,
        FIGURE2_ORACLE,
        replay_ap_minmax,
    )

    result = benchmark(replay_ap_minmax, FIGURE2_B, FIGURE2_A, FIGURE2_ORACLE)
    assert len(result.instances) == 8
    assert result.matches == [("b2", "a3"), ("b5", "a5")]
    report_writer("figure02_verbatim", result.render())


def bench_figure3_verbatim_replay(benchmark, report_writer):
    """Replay the paper's exact Figure 3 scenario at the encoded level."""
    from repro.algorithms import (
        FIGURE3_A,
        FIGURE3_B,
        FIGURE3_ORACLE,
        replay_ex_minmax,
    )

    result = benchmark(replay_ex_minmax, FIGURE3_B, FIGURE3_A, FIGURE3_ORACLE)
    assert len(result.instances) == 6
    assert {b for b, _ in result.matches} == {"b1", "b2", "b3"}
    report_writer("figure03_verbatim", result.render())


def bench_figure2_ap_minmax_trace(benchmark, report_writer):
    community_b, community_a = _trace_couple()
    algorithm = ApMinMax(1, n_parts=4, engine="python", record_trace=True)
    result = benchmark.pedantic(
        algorithm.join, args=(community_b, community_a), rounds=1, iterations=1
    )
    trace = algorithm.last_trace
    report_writer("figure02", trace.format())

    kinds = {event.kind for event in trace.events}
    # The walkthrough must exhibit the pruning machinery in action.
    assert EventType.MATCH in kinds
    assert EventType.MIN_PRUNE in kinds or EventType.MAX_PRUNE in kinds
    assert result.n_matched == trace.counts.match


def bench_figure3_ex_minmax_trace(benchmark, report_writer):
    community_b, community_a = _trace_couple()
    algorithm = ExMinMax(1, n_parts=4, engine="python", record_trace=True)
    result = benchmark.pedantic(
        algorithm.join, args=(community_b, community_a), rounds=1, iterations=1
    )
    trace = algorithm.last_trace
    report_writer("figure03", trace.format())

    # Figure 3's distinctive elements: maxV annotations and CSF calls.
    match_events = [e for e in trace.events if e.kind is EventType.MATCH]
    assert any(event.detail.startswith("maxV") for event in match_events)
    assert any(note.startswith("CSF(") for note in trace.notes)
    assert result.n_matched <= trace.counts.match
