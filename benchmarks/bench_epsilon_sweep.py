"""Epsilon selectivity sweep (Section 1.1's motivation, as a curve).

CSJ argues for a *meaningful* minimal epsilon instead of the classic
epsilon-join's selectivity tuning.  The bench sweeps epsilon on couple
cID 1 and checks the curve's shape: monotone, with a sharp knee at the
data's meaningful threshold (epsilon = 1 on VK) followed by a plateau.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import epsilon_sweep, render_sweep
from repro.datasets import PAPER_COUPLES, VKGenerator, build_couple

EPSILONS = [0, 1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def sweep_couple(bench_scale, bench_seed):
    generator = VKGenerator(seed=bench_seed)
    return build_couple(PAPER_COUPLES[0], generator, scale=bench_scale)


def bench_epsilon_selectivity(benchmark, sweep_couple, report_writer):
    community_b, community_a = sweep_couple
    points = benchmark.pedantic(
        epsilon_sweep,
        args=(community_b, community_a, EPSILONS),
        rounds=1,
        iterations=1,
    )
    report_writer("epsilon_sweep", render_sweep(points, parameter_name="epsilon"))

    # Also emit the curve as a standalone SVG figure.
    from _shared import OUTPUT_DIR

    from repro.analysis.charts import Series, line_chart, save_chart

    series = Series(
        "similarity %",
        tuple((point.parameter, point.similarity_percent) for point in points),
    )
    save_chart(
        OUTPUT_DIR / "epsilon_sweep",
        line_chart(
            [series],
            title="CSJ selectivity vs epsilon (couple cID 1, VK)",
            x_label="epsilon",
            y_label="similarity %",
        ),
    )

    similarities = [point.similarity_percent for point in points]
    assert similarities == sorted(similarities), "selectivity must be monotone"
    by_epsilon = {point.parameter: point for point in points}
    knee_gain = by_epsilon[1].similarity_percent - by_epsilon[0].similarity_percent
    plateau_gain = by_epsilon[4].similarity_percent - by_epsilon[1].similarity_percent
    assert knee_gain > 5 * max(plateau_gain, 0.1), (
        "the meaningful epsilon must dominate the plateau"
    )
