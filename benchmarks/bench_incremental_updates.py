"""Incremental maintenance bench: absorb a like stream, re-join.

Two workloads:

* ``bench_replay_and_rejoin`` — the batch cycle a platform runs between
  CSJ refreshes: replay a batch of like events into an incremental
  community, snapshot, re-join, and check that updates behave (counters
  only grow, drift can only erode an epsilon-bounded similarity).
* ``bench_delta_live_updates`` — the live-update cycle: one like at a
  time, each followed by a fresh similarity read.  Three strategies are
  timed on the same seeded stream — the in-process
  :class:`~repro.core.delta.DeltaJoinMaintainer`, the serve-side
  :class:`~repro.serve.store.DeltaJoinPool` (mutation-log replay per
  refresh), and full recompute-per-event with the exact baseline — and
  the delta path is differentially spot-checked against a from-scratch
  join on sampled prefixes.  The ``delta`` section merges into
  ``BENCH_engine.json`` when not in smoke mode; the maintainer must
  sustain at least a 5x updates/sec advantage over recompute-per-event.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import IncrementalCommunity, csj_similarity
from repro.algorithms import ExBaseline
from repro.core.delta import DeltaJoinMaintainer
from repro.core.types import Community
from repro.datasets import LikeStreamSimulator, replay
from repro.serve.store import CommunityStore, DeltaJoinPool

N_USERS = 400
N_EVENTS = 2_000

#: Live-update workload knobs (overridable for the smoke-scale run).
DELTA_USERS = int(os.environ.get("REPRO_BENCH_DELTA_USERS", 400))
DELTA_DIMS = int(os.environ.get("REPRO_BENCH_DELTA_DIMS", 10))
DELTA_EVENTS = int(os.environ.get("REPRO_BENCH_DELTA_EVENTS", 2_000))
DELTA_EPSILON = int(os.environ.get("REPRO_BENCH_DELTA_EPSILON", 2))
#: Recompute-per-event is timed on a prefix this long and extrapolated.
DELTA_RECOMPUTE_SAMPLE = int(
    os.environ.get("REPRO_BENCH_DELTA_RECOMPUTE_SAMPLE", 64)
)
#: Differential spot-check cadence (every Nth event, plus the final one).
DELTA_CHECK_EVERY = int(os.environ.get("REPRO_BENCH_DELTA_CHECK_EVERY", 250))
#: Smoke mode checks correctness only (no speedup floor, no JSON merge).
DELTA_SMOKE = os.environ.get("REPRO_BENCH_DELTA_SMOKE", "0") == "1"

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def incremental_pair(bench_seed):
    rng = np.random.default_rng(bench_seed)
    base = rng.integers(0, 25, size=(N_USERS, 27))
    frozen = IncrementalCommunity("frozen", 27, vectors=base)
    living = IncrementalCommunity("living", 27, vectors=base)
    return frozen, living


def bench_replay_and_rejoin(benchmark, incremental_pair, bench_seed, report_writer):
    frozen, living = incremental_pair
    simulator = LikeStreamSimulator(living, seed=bench_seed)
    reference = frozen.snapshot()
    before = csj_similarity(reference, living.snapshot(), epsilon=1).similarity

    def cycle():
        applied = replay(living, simulator.events(N_EVENTS))
        result = csj_similarity(reference, living.snapshot(), epsilon=1)
        return applied, result

    applied, result = benchmark.pedantic(cycle, rounds=1, iterations=1)
    report_writer(
        "incremental_updates",
        f"applied {applied} events to {N_USERS} users; similarity vs the "
        f"frozen reference: {100 * before:.2f}% -> "
        f"{result.similarity_percent:.2f}%",
    )

    assert applied == N_EVENTS
    assert before == pytest.approx(1.0)
    # Drift against a frozen reference can only erode the matching.
    assert result.similarity <= before
    # Counters are aggregates: they never decrease.
    assert (living.snapshot().vectors >= frozen.snapshot().vectors).all()


def _reference_join(mats: dict[str, np.ndarray]):
    """Recompute-from-scratch on the current ground-truth matrices."""
    return ExBaseline(DELTA_EPSILON, matcher="hopcroft_karp").join(
        Community("one", vectors=mats["one"].copy()),
        Community("two", vectors=mats["two"].copy()),
    )


def _like_stream(seed: int, sizes: dict[str, int], n_events: int):
    """A seeded likes-only stream: ``(name, row, dimension, count)``."""
    rng = np.random.default_rng([seed, 93])
    names = sorted(sizes)
    stream = []
    for _ in range(n_events):
        name = names[int(rng.integers(0, len(names)))]
        stream.append(
            (
                name,
                int(rng.integers(0, sizes[name])),
                int(rng.integers(0, DELTA_DIMS)),
                int(rng.integers(1, 4)),
            )
        )
    return stream


@pytest.mark.bench
@pytest.mark.delta
def bench_delta_live_updates(bench_seed, report_writer):
    rng = np.random.default_rng([bench_seed, 17])
    users_b = max(2, (DELTA_USERS * 17) // 20)
    base = {
        "one": rng.integers(0, 10, size=(DELTA_USERS, DELTA_DIMS)),
        "two": rng.integers(0, 10, size=(users_b, DELTA_DIMS)),
    }
    sizes = {name: len(mat) for name, mat in base.items()}
    events = _like_stream(bench_seed, sizes, DELTA_EVENTS)

    # -- recompute-per-event baseline (timed on a prefix, extrapolated) --
    sample = min(DELTA_RECOMPUTE_SAMPLE, len(events))
    mats = {name: mat.copy() for name, mat in base.items()}
    started = time.perf_counter()
    for name, row, dimension, count in events[:sample]:
        mats[name][row, dimension] += count
        _reference_join(mats)
    t_recompute = time.perf_counter() - started
    recompute_rate = sample / t_recompute

    # -- in-process maintainer: apply the delta, read the similarity ----
    mats = {name: mat.copy() for name, mat in base.items()}
    maintainer = DeltaJoinMaintainer(
        Community("one", vectors=base["one"].copy()),
        Community("two", vectors=base["two"].copy()),
        DELTA_EPSILON,
    )
    checks = 0
    t_delta = 0.0
    for index, (name, row, dimension, count) in enumerate(events, start=1):
        mats[name][row, dimension] += count
        tick = time.perf_counter()
        maintainer.record_like("first" if name == "one" else "second", row, dimension, count)
        similarity = maintainer.similarity
        t_delta += time.perf_counter() - tick
        if index % DELTA_CHECK_EVERY == 0 or index == len(events):
            reference = _reference_join(mats)
            assert similarity == reference.similarity
            assert maintainer.n_matched == reference.n_matched
            assert maintainer.events.as_dict() == reference.events.as_dict()
            checks += 1
    delta_rate = len(events) / t_delta

    # -- serve-side pool: store mutation log replayed per refresh -------
    store = CommunityStore()
    for name, mat in base.items():
        store.register(name, mat)
    pool = DeltaJoinPool(store)
    pool.refresh("one", "two", DELTA_EPSILON)
    started = time.perf_counter()
    for name, row, dimension, count in events:
        store.record_like(name, row, dimension, count)
        summary = pool.refresh("one", "two", DELTA_EPSILON)
    t_pool = time.perf_counter() - started
    pool_rate = len(events) / t_pool
    assert summary["mode"] == "delta"
    assert summary["similarity"] == maintainer.similarity

    speedup = delta_rate / recompute_rate
    section = {
        "workload": {
            "users": sizes,
            "dims": DELTA_DIMS,
            "events": len(events),
            "epsilon": DELTA_EPSILON,
            "recompute_sample": sample,
            "differential_checks": checks,
            "smoke": DELTA_SMOKE,
        },
        "updates_per_sec": {
            "delta_maintainer": round(delta_rate, 1),
            "delta_pool": round(pool_rate, 1),
            "recompute_per_event": round(recompute_rate, 1),
        },
        "staleness_seconds_per_update": {
            "delta_maintainer": round(t_delta / len(events), 8),
            "delta_pool": round(t_pool / len(events), 8),
            "recompute_per_event": round(t_recompute / sample, 8),
        },
        "speedup_vs_recompute": round(speedup, 2),
        "maintainer_stats": maintainer.stats.as_dict(),
        "pool_stats": pool.stats(),
    }
    report_writer("delta_live_updates", json.dumps(section, indent=2))
    if not DELTA_SMOKE:
        assert speedup >= 5.0, (
            f"delta maintenance ({delta_rate:.0f} updates/s) must sustain "
            f">= 5x recompute-per-event ({recompute_rate:.0f} updates/s); "
            f"measured {speedup:.2f}x"
        )
        if _JSON_PATH.exists():
            merged = json.loads(_JSON_PATH.read_text())
            merged["delta"] = section
            _JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
            print(f"[delta section merged into {_JSON_PATH}]")
