"""Incremental maintenance bench: absorb a like stream, re-join.

Measures the full maintenance cycle a platform runs between CSJ
refreshes — replaying a batch of like events into an incremental
community, snapshotting, and re-joining — and checks that the updates
behave: counters only grow and drift can only lower an epsilon-bounded
similarity against a frozen reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IncrementalCommunity, csj_similarity
from repro.datasets import LikeStreamSimulator, replay

N_USERS = 400
N_EVENTS = 2_000


@pytest.fixture(scope="module")
def incremental_pair(bench_seed):
    rng = np.random.default_rng(bench_seed)
    base = rng.integers(0, 25, size=(N_USERS, 27))
    frozen = IncrementalCommunity("frozen", 27, vectors=base)
    living = IncrementalCommunity("living", 27, vectors=base)
    return frozen, living


def bench_replay_and_rejoin(benchmark, incremental_pair, bench_seed, report_writer):
    frozen, living = incremental_pair
    simulator = LikeStreamSimulator(living, seed=bench_seed)
    reference = frozen.snapshot()
    before = csj_similarity(reference, living.snapshot(), epsilon=1).similarity

    def cycle():
        applied = replay(living, simulator.events(N_EVENTS))
        result = csj_similarity(reference, living.snapshot(), epsilon=1)
        return applied, result

    applied, result = benchmark.pedantic(cycle, rounds=1, iterations=1)
    report_writer(
        "incremental_updates",
        f"applied {applied} events to {N_USERS} users; similarity vs the "
        f"frozen reference: {100 * before:.2f}% -> "
        f"{result.similarity_percent:.2f}%",
    )

    assert applied == N_EVENTS
    assert before == pytest.approx(1.0)
    # Drift against a frozen reference can only erode the matching.
    assert result.similarity <= before
    # Counters are aggregates: they never decrease.
    assert (living.snapshot().vectors >= frozen.snapshot().vectors).all()
