"""Table 8: exact methods, Synthetic dataset, different categories.

Paper shape: zero accuracy loss for Ex-SuperEGO on uniform data — all
three exact methods report the same similarity on every couple, and
cID 10 remains the below-15% edge case.
"""

from __future__ import annotations

from _shared import run_and_report


def bench_table08(benchmark, bench_scale, bench_seed, report_writer):
    run = run_and_report(
        benchmark, 8, report_writer, scale=bench_scale, seed=bench_seed
    )

    for row in run.rows:
        values = {
            round(row.similarity_percent(method), 6) for method in run.methods
        }
        assert len(values) == 1, f"cID {row.spec.c_id}: exact methods disagree"

    edge = next(row for row in run.rows if row.spec.c_id == 10)
    assert edge.similarity_percent("ex-minmax") < 15.0
    for row in run.rows:
        if row.spec.c_id != 10:
            assert row.similarity_percent("ex-minmax") >= 12.0
