"""The similarity service: served joins equal direct engine calls.

Starts the asyncio CSJ service on an embedded event-loop thread,
registers two paper couples, and joins one couple twice — once over the
wire, once directly through a `BatchEngine` — asserting the served
similarity and matching are identical.  Then it streams a few
subscriptions through `mutate` and shows the next served join picking
up the new community version, plus the service's own stats (admission,
shedding, cache, latency counters).

Run:  python examples/similarity_service.py
"""

from __future__ import annotations

import json

from repro import BatchEngine, PairJob, VKGenerator, build_couple
from repro.datasets import PAPER_COUPLES
from repro.serve import CommunityStore, ServeClient, ServerThread

EPSILON = 1
SCALE = 1 / 256


def main() -> None:
    generator = VKGenerator(seed=7)
    store = CommunityStore()
    couples = []
    for spec in PAPER_COUPLES[:2]:
        community_b, community_a = build_couple(spec, generator, scale=SCALE)
        store.register_community(community_b)
        store.register_community(community_a)
        couples.append((community_b, community_a))

    with ServerThread(store=store) as st:
        host, port = st.address
        print(f"service up on {host}:{port} with {len(store)} communities\n")
        with ServeClient(host, port) as client:
            b, a = couples[0]

            served = client.join(b.name, a.name, epsilon=EPSILON)
            with BatchEngine([b, a], n_jobs=1) as engine:
                direct = engine.run(
                    [PairJob.build(0, 1, "ex-minmax", EPSILON)]
                )[0].result

            print(f"served:  {b.name!r} vs {a.name!r} -> "
                  f"{100 * served['result']['similarity']:.2f}% "
                  f"({served['disposition']})")
            print(f"direct:  BatchEngine          -> "
                  f"{100 * direct.similarity:.2f}%")
            assert served["result"]["similarity"] == direct.similarity
            assert served["result"]["pairs"] == [
                list(pair) for pair in direct.to_dict()["pairs"]
            ]
            print("parity:  served matching is identical to the direct one\n")

            again = client.join(b.name, a.name, epsilon=EPSILON)
            print(f"repeat:  disposition={again['disposition']!r} "
                  "(shared join-result cache)\n")

            profile = [1] * b.n_dims
            for _ in range(3):
                mutated = client.subscribe(b.name, profile)
            print(f"mutate:  3 subscriptions -> {b.name!r} at "
                  f"version {mutated['version']}, "
                  f"{mutated['n_users']} users")
            fresh = client.join(b.name, a.name, epsilon=EPSILON)
            print(f"rejoin:  sees version {fresh['first']['version']}, "
                  f"disposition={fresh['disposition']!r} "
                  "(fingerprint change invalidates the cache)\n")

            stats = client.stats()
            print("stats:")
            print(json.dumps(
                {
                    "admission": stats["admission"],
                    "requests_by_op": stats["requests_by_op"],
                    "cache": stats["cache"],
                },
                indent=2,
            ))


if __name__ == "__main__":
    main()
