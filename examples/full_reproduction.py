"""One-stop walkthrough of the whole reproduction.

Runs, at a small scale, every stage the paper's evaluation consists of:

1. Table 1 — dataset statistics (category rankings, skew);
2. one couple from Table 2 joined with all six methods (a row of
   Tables 3+4), with the paper's reported values next to ours;
3. the pruning-event breakdown behind the MinMax speedups;
4. a Table 11-style scalability mini-run;
5. the invariant self-check.

For full tables use the CLI (``repro-csj table4``, ``repro-csj
experiments``) or the benchmark harness.

Run:  python examples/full_reproduction.py
"""

from __future__ import annotations

from repro import csj_similarity
from repro.algorithms import ALL_METHODS, method_display_name
from repro.analysis import (
    paper_similarity,
    profile_events,
    render_event_report,
    render_scalability_table,
    run_scalability,
    run_selfcheck,
    run_table1,
)
from repro.datasets import PAPER_COUPLES, VK_EPSILON, VKGenerator, build_couple

SCALE = 1 / 256


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def stage_1_table1() -> None:
    banner("1. Dataset statistics (Table 1)")
    run = run_table1(n_users=4000, seed=7)
    head = ", ".join(entry.category for entry in run.vk_ranking[:5])
    skew = run.vk_ranking[0].total_likes / max(run.vk_ranking[-1].total_likes, 1)
    print(f"VK top-5 categories: {head}")
    print(f"VK head-to-tail skew: {skew:,.0f}x (paper: ~4450x at 7.8M users)")


def stage_2_methods() -> tuple:
    banner("2. All six methods on couple cID 1 (Tables 3 and 4, row 1)")
    generator = VKGenerator(seed=7)
    spec = PAPER_COUPLES[0]
    community_b, community_a = build_couple(spec, generator, scale=SCALE)
    print(f"{spec.name_b!r} vs {spec.name_a!r}: |B|={len(community_b)}, "
          f"|A|={len(community_a)}, epsilon={VK_EPSILON}\n")
    print(f"{'method':14s} {'paper':>8s} {'measured':>9s} {'time':>9s}")
    for method in ALL_METHODS:
        result = csj_similarity(
            community_b, community_a, epsilon=VK_EPSILON, method=method
        )
        table = 3 if method.startswith("ap") else 4
        paper = paper_similarity(table, spec.c_id, method)
        paper_text = f"{paper:.2f}%" if paper is not None else "-"
        print(
            f"{method_display_name(method):14s} {paper_text:>8s} "
            f"{result.similarity_percent:8.2f}% "
            f"{result.elapsed_seconds * 1000:7.1f}ms"
        )
    return community_b, community_a


def stage_3_events(community_b, community_a) -> None:
    banner("3. Why MinMax is fast: the pruning-event breakdown")
    small_b = community_b.subset(range(min(120, len(community_b))))
    small_a = community_a.subset(range(min(140, len(community_a))))
    profiles = profile_events(small_b, small_a, epsilon=VK_EPSILON)
    print(render_event_report(profiles))


def stage_4_scalability() -> None:
    banner("4. Scalability (Table 11, two categories)")
    cells = run_scalability(
        scale=SCALE, categories=("Job_search", "Sport"), steps=(1, 2, 3, 4)
    )
    print(render_scalability_table(cells, scale=SCALE))


def stage_5_selfcheck(community_b, community_a) -> None:
    banner("5. Invariant self-check")
    report = run_selfcheck(
        community_b.subset(range(min(100, len(community_b)))),
        community_a.subset(range(min(110, len(community_a)))),
        epsilon=VK_EPSILON,
    )
    verdict = "ALL CHECKS PASSED" if report.passed else "CHECKS FAILED"
    print(f"{len(report.outcomes)} checks -> {verdict}")


def main() -> None:
    stage_1_table1()
    community_b, community_a = stage_2_methods()
    stage_3_events(community_b, community_a)
    stage_4_scalability()
    stage_5_selfcheck(community_b, community_a)


if __name__ == "__main__":
    main()
