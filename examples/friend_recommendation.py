"""Friend recommendation (Section 1.2, case i).

CSJ matches users with near-identical preference profiles across two
communities *without any structural link* between them — the "people
with similar interests follow ..." notification style the paper quotes
from LinkedIn and VK.  Each matched pair yields a mutual follow
suggestion.

Run:  python examples/friend_recommendation.py
"""

from __future__ import annotations

from repro import VKGenerator, build_couple
from repro.apps import FriendRecommender
from repro.datasets import PAPER_COUPLES, VK_EPSILON


def main() -> None:
    generator = VKGenerator(seed=3)
    # cID 11: two cooking communities with heavily overlapping audiences.
    spec = next(s for s in PAPER_COUPLES if s.c_id == 11)
    community_b, community_a = build_couple(spec, generator, scale=1 / 512)

    recommender = FriendRecommender(VK_EPSILON, method="ex-minmax")
    suggestions = recommender.recommend(community_b, community_a)

    print(
        f"{community_b.name!r} ({len(community_b)} users) x "
        f"{community_a.name!r} ({len(community_a)} users)"
    )
    print(
        f"{len(suggestions)} matched profile pairs -> "
        f"{2 * len(suggestions)} follow notifications\n"
    )
    for suggestion in suggestions[:8]:
        print(f"  - {suggestion.message}")
    if len(suggestions) > 8:
        print(f"  ... and {len(suggestions) - 8} more")


if __name__ == "__main__":
    main()
