"""Streaming counters: community similarity drifting over time.

Section 1.1 stresses that user vectors are living aggregates — every
liked post bumps the counters of its categories.  This script builds
two communities that start as near-copies, then feeds each its own
reinforcing like stream and re-computes the CSJ similarity after every
batch: with a fixed epsilon of 1, accumulated drift steadily erodes the
matchable audience, which is why platforms re-run CSJ periodically.

Run:  python examples/streaming_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import IncrementalCommunity, csj_similarity
from repro.datasets import LikeStreamSimulator, replay


def main() -> None:
    rng = np.random.default_rng(7)
    base = rng.integers(0, 25, size=(150, 10))
    left = IncrementalCommunity("Nike", 10, category="Sport", vectors=base)
    right = IncrementalCommunity(
        "Adidas",
        10,
        category="Sport",
        vectors=np.maximum(base + rng.integers(-1, 2, size=base.shape), 0),
    )

    left_stream = LikeStreamSimulator(left, seed=1)
    right_stream = LikeStreamSimulator(right, seed=2)

    print("batch  events/side  similarity (Ex-MinMax, epsilon=1)")
    for batch in range(0, 9):
        if batch > 0:
            replay(left, left_stream.events(400))
            replay(right, right_stream.events(400))
        result = csj_similarity(
            left.snapshot(), right.snapshot(), epsilon=1, method="ex-minmax"
        )
        print(f"{batch:5d}  {batch * 400:11d}  {result.similarity_percent:6.2f}%")

    print(
        "\nDrift erodes the matched audience monotonically-in-trend; "
        "re-running CSJ keeps recommendations current."
    )


if __name__ == "__main__":
    main()
