"""Out-of-core joining: communities that do not fit in memory.

The paper's VK sample alone holds 7.8M users; a platform-scale CSJ
deployment cannot assume both communities are resident.  This script
persists a couple to disk (``.npy`` + metadata), reopens the files as
memory maps, and joins them with bounded memory — the result is
pair-for-pair identical to the in-memory Ex-MinMax, which the script
verifies.

Run:  python examples/out_of_core_join.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import VKGenerator, build_couple, csj_similarity
from repro.datasets import PAPER_COUPLES, VK_EPSILON
from repro.extensions import OnDiskCommunity, out_of_core_similarity


def main() -> None:
    generator = VKGenerator(seed=7)
    community_b, community_a = build_couple(
        PAPER_COUPLES[0], generator, scale=1 / 64
    )

    with tempfile.TemporaryDirectory() as workdir:
        root = Path(workdir)
        disk_b = OnDiskCommunity.from_community(root / "quick_recipes", community_b)
        disk_a = OnDiskCommunity.from_community(root / "salads", community_a)
        footprint = sum(p.stat().st_size for p in root.glob("*.npy"))
        print(
            f"persisted {disk_b.name!r} ({len(disk_b):,} users) and "
            f"{disk_a.name!r} ({len(disk_a):,} users): "
            f"{footprint / 1e6:.1f} MB on disk"
        )

        disk_result = out_of_core_similarity(
            disk_b, disk_a, epsilon=VK_EPSILON, chunk_size=1024
        )
        print(f"on-disk join:   {disk_result.summary()}")

        memory_result = csj_similarity(
            community_b, community_a, epsilon=VK_EPSILON, method="ex-minmax"
        )
        print(f"in-memory join: {memory_result.summary()}")

        identical = set(disk_result.pair_tuples()) == set(
            memory_result.pair_tuples()
        )
        print(f"matchings identical: {identical}")
        assert identical


if __name__ == "__main__":
    main()
