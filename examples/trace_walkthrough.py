"""Walkthrough of Figures 1–3: the encoding scheme and MinMax traces.

Part 1 reproduces Figure 1 verbatim: the 27-dimensional example vector,
its 4-part segmentation, part sums, per-part ranges and the encoded
ID/Min/Max values (46, 28 and 73 in the paper).

Parts 2 and 3 run the faithful python engines of Ap-MinMax and
Ex-MinMax on a tiny couple with ``record_trace=True`` and print the
event streams — the same MIN PRUNE / MAX PRUNE / NO OVERLAP / NO MATCH
/ MATCH instances Figures 2 and 3 illustrate, including Ex-MinMax's
maxV updates and CSF segment flushes.

Run:  python examples/trace_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import ApMinMax, Community, ExMinMax, MinMaxEncoder

#: The exact user vector of Figure 1 (d = 27, epsilon = 1).
FIGURE1_VECTOR = np.array(
    [1, 0, 0, 0, 2, 2,
     0, 0, 2, 1, 1, 5, 4,
     0, 3, 0, 0, 1, 4, 1,
     0, 3, 5, 4, 1, 2, 4]
)


def part_1_encoding() -> None:
    print("=" * 70)
    print("Figure 1: the MinMax encoding scheme")
    print("=" * 70)
    encoder = MinMaxEncoder(epsilon=1, n_parts=4)
    description = encoder.describe(FIGURE1_VECTOR)
    print(f"user vector = {'|'.join(map(str, FIGURE1_VECTOR))}")
    print(f"epsilon = 1, d = {len(FIGURE1_VECTOR)}\n")
    for index, (sl, part, rng) in enumerate(
        zip(description["part_slices"], description["parts"],
            description["part_ranges"]),
        start=1,
    ):
        values = "|".join(map(str, FIGURE1_VECTOR[sl]))
        print(f"{index}. part: {values} = {part}   range {list(rng)}")
    print(f"\nencoded_ID  = {description['encoded_id']}")
    print(f"encoded_Min = {description['encoded_min']}")
    print(f"encoded_Max = {description['encoded_max']}")


def tiny_couple(seed: int = 12) -> tuple[Community, Community]:
    """A 5x5 couple small enough to read the full event stream."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 6, size=(5, 8))
    perturbed = np.maximum(base + rng.integers(-1, 2, size=base.shape), 0)
    spread = rng.integers(0, 14, size=(5, 8))
    community_b = Community("B", np.maximum(base + spread // 7, 0))
    community_a = Community("A", np.concatenate([perturbed[:3], spread[:2]]))
    return community_b, community_a


def part_2_ap_trace() -> None:
    print("\n" + "=" * 70)
    print("Figure 2: Approximate MinMax execution trace")
    print("=" * 70)
    community_b, community_a = tiny_couple()
    algorithm = ApMinMax(epsilon=1, n_parts=4, engine="python", record_trace=True)
    result = algorithm.join(community_b, community_a)
    print(algorithm.last_trace.format())
    print(f"\nMATCHES = {result.pair_tuples()}  "
          f"(similarity {result.similarity_percent:.0f}%)")


def part_3_ex_trace() -> None:
    print("\n" + "=" * 70)
    print("Figure 3: Exact MinMax execution trace (maxV + CSF segments)")
    print("=" * 70)
    community_b, community_a = tiny_couple()
    algorithm = ExMinMax(epsilon=1, n_parts=4, engine="python", record_trace=True)
    result = algorithm.join(community_b, community_a)
    print(algorithm.last_trace.format())
    print(f"\nMATCHES = {result.pair_tuples()}  "
          f"(similarity {result.similarity_percent:.0f}%)")


def part_4_verbatim_replays() -> None:
    """Replay the paper's exact Figure 2 and Figure 3 scenarios."""
    from repro.algorithms import (
        FIGURE2_A,
        FIGURE2_B,
        FIGURE2_ORACLE,
        FIGURE3_A,
        FIGURE3_B,
        FIGURE3_ORACLE,
        replay_ap_minmax,
        replay_ex_minmax,
    )

    print("\n" + "=" * 70)
    print("Figure 2 verbatim: the paper's exact Ap-MinMax instances")
    print("=" * 70)
    print(replay_ap_minmax(FIGURE2_B, FIGURE2_A, FIGURE2_ORACLE).render())

    print("\n" + "=" * 70)
    print("Figure 3 verbatim: the paper's exact Ex-MinMax instances")
    print("=" * 70)
    print(replay_ex_minmax(FIGURE3_B, FIGURE3_A, FIGURE3_ORACLE).render())


def main() -> None:
    part_1_encoding()
    part_2_ap_trace()
    part_3_ex_trace()
    part_4_verbatim_replays()


if __name__ == "__main__":
    main()
