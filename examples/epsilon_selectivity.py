"""Epsilon selectivity study (Section 1.1's motivation).

The classic epsilon-join struggles with choosing epsilon "in regards to
the selectivity of the join"; CSJ instead fixes a *meaningful* minimal
epsilon.  This script sweeps epsilon on a VK-like couple and prints the
similarity curve: it saturates sharply around the data's meaningful
threshold (1 like), after which growing epsilon only adds noise pairs —
the quantitative version of the paper's argument.

It also demonstrates the per-category epsilon extension: relaxing only
the heavy Entertainment dimension barely moves the score, relaxing all
dimensions does.

Run:  python examples/epsilon_selectivity.py
"""

from __future__ import annotations

from repro import VKGenerator, build_couple
from repro.analysis import epsilon_sweep, render_sweep
from repro.datasets import PAPER_COUPLES, category_index
from repro.extensions import vector_epsilon_similarity


def main() -> None:
    generator = VKGenerator(seed=7)
    community_b, community_a = build_couple(
        PAPER_COUPLES[0], generator, scale=1 / 256
    )
    print(
        f"couple cID 1 at |B|={len(community_b)}, |A|={len(community_a)} "
        "(engineered for epsilon = 1)\n"
    )

    points = epsilon_sweep(
        community_b, community_a, epsilons=[0, 1, 2, 4, 8, 16, 32, 64]
    )
    print(render_sweep(points, parameter_name="epsilon"))

    print("\nper-category epsilon (extension):")
    d = community_b.n_dims
    uniform = vector_epsilon_similarity(community_b, community_a, [1] * d)
    relaxed_one = [1] * d
    relaxed_one[category_index("Entertainment")] = 16
    one_dim = vector_epsilon_similarity(community_b, community_a, relaxed_one)
    all_dims = vector_epsilon_similarity(community_b, community_a, [16] * d)
    print(f"  eps = 1 everywhere:              {uniform.similarity_percent:6.2f}%")
    print(f"  eps = 16 on Entertainment only:  {one_dim.similarity_percent:6.2f}%")
    print(f"  eps = 16 everywhere:             {all_dims.similarity_percent:6.2f}%")


if __name__ == "__main__":
    main()
