"""CSJ beyond social networks: a movie-platform scenario (Section 1.1).

The paper notes that category-dimensions exist wherever users
"constantly consume" content — e-commerce, movie platforms, song
databases: "when a user views a movie that belongs to categories comedy
and romance, the counters in dimensions that map to comedy and romance
increase by one."  This script builds exactly that: per-genre view
counters for the audiences of two streaming services, grows them with a
view stream (multi-genre titles bump several counters at once), and
ranks candidate services by audience similarity.

Run:  python examples/movie_platform.py
"""

from __future__ import annotations

import numpy as np

from repro import Community, IncrementalCommunity, csj_similarity
from repro.apps import PartnerRecommender

GENRES = (
    "Action", "Comedy", "Drama", "Romance", "Thriller",
    "SciFi", "Horror", "Documentary", "Animation", "Crime",
)

#: Catalogue titles with their (multi-)genre tags.
TITLES = [
    ("Laugh Lines", ("Comedy", "Romance")),
    ("Deep Orbit", ("SciFi", "Thriller")),
    ("The Ledger", ("Crime", "Drama")),
    ("Painted Seas", ("Animation", "Comedy")),
    ("Cold Case Files", ("Documentary", "Crime")),
    ("Starlight Waltz", ("Romance", "Drama")),
    ("Night Shift", ("Horror", "Thriller")),
    ("Kick the Sky", ("Action", "SciFi")),
]


def watch_stream(
    audience: IncrementalCommunity, rng: np.random.Generator, n_views: int,
    taste: dict[str, float],
) -> None:
    """Simulate views: each view bumps every genre of the watched title."""
    weights = np.array(
        [sum(taste.get(genre, 0.1) for genre in genres) for _, genres in TITLES]
    )
    weights = weights / weights.sum()
    user_ids = audience.user_ids()
    for _ in range(n_views):
        user = int(rng.choice(user_ids))
        title_index = int(rng.choice(len(TITLES), p=weights))
        for genre in TITLES[title_index][1]:
            audience.record_like(user, GENRES.index(genre))


def build_service(
    name: str, n_users: int, taste: dict[str, float], seed: int,
    shared_with: Community | None = None, shared_fraction: float = 0.0,
) -> Community:
    """A streaming service's audience, optionally sharing subscribers."""
    rng = np.random.default_rng(seed)
    audience = IncrementalCommunity(name, len(GENRES))
    for _ in range(n_users):
        audience.subscribe()
    watch_stream(audience, rng, n_views=n_users * 40, taste=taste)
    vectors = audience.snapshot().vectors
    if shared_with is not None and shared_fraction > 0:
        n_shared = int(shared_fraction * n_users)
        rows = rng.choice(len(shared_with), size=n_shared, replace=False)
        shared = np.maximum(
            shared_with.vectors[rows] + rng.integers(-2, 3, size=(n_shared, len(GENRES))),
            0,
        )
        vectors = np.concatenate([shared, vectors[: n_users - n_shared]])
    return Community(name, vectors, category="Streaming")


def main() -> None:
    anchor = build_service(
        "NebulaFlix", 500, {"SciFi": 3.0, "Thriller": 2.0, "Action": 1.5}, seed=1
    )
    candidates = [
        build_service("OrbitPlay", 520, {"SciFi": 2.5, "Action": 2.0}, seed=2,
                      shared_with=anchor, shared_fraction=0.3),
        build_service("HeartStream", 480, {"Romance": 3.0, "Comedy": 2.0}, seed=3,
                      shared_with=anchor, shared_fraction=0.08),
        build_service("TrueLens", 510, {"Documentary": 3.0, "Crime": 2.0}, seed=4),
    ]

    print(f"anchor service: {anchor.name!r} ({len(anchor)} viewers, "
          f"{len(GENRES)} genre dimensions)\n")
    # Per-genre counters are larger here (40 views/user), so the
    # meaningful epsilon is a few views rather than one like.
    epsilon = 2
    recommender = PartnerRecommender(epsilon, method="ex-minmax")
    print(f"audience similarity at epsilon = {epsilon} views per genre:")
    for score in recommender.rank(anchor, candidates):
        print(f"  {score.candidate:12s} {100 * score.similarity:6.2f}%  "
              f"({score.result.n_matched} matched viewers)")

    exact = csj_similarity(anchor, candidates[0], epsilon=epsilon)
    print(f"\nbest partner: {candidates[0].name!r} — "
          f"{exact.similarity_percent:.2f}% of NebulaFlix viewers have a "
          "near-identical genre profile there")


if __name__ == "__main__":
    main()
