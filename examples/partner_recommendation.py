"""Business-partner recommendation (Section 1.2, case ii.a).

A fashion brand ("Fashionable girl") looks for promising partner brands
by ranking candidate communities on the CSJ similarity of their
audiences — the Dior/Charlize-Theron scenario: no community detection,
no graph connectivity, just audience profile joins.

The script also demonstrates the paper's two-phase pipeline (Section 3):
a fast approximate screening pass over all candidates, then an exact
refinement of the shortlist.

Run:  python examples/partner_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import Community, VKGenerator
from repro.apps import PartnerRecommender
from repro.datasets import VK_EPSILON


def make_candidate(
    generator: VKGenerator,
    anchor: Community,
    rng: np.random.Generator,
    name: str,
    category: str,
    size: int,
    shared_fraction: float,
) -> Community:
    """A candidate brand whose audience overlaps the anchor's.

    ``shared_fraction`` of its subscribers are anchor subscribers with
    profiles perturbed within epsilon (the same people, slightly later
    in time); the rest are the brand's own category audience.
    """
    own = generator.make_community(name, category, size, seed_key=name)
    n_shared = int(shared_fraction * size)
    rows = rng.choice(len(anchor), size=n_shared, replace=False)
    shared = anchor.vectors[rows]
    noise = rng.integers(-VK_EPSILON, VK_EPSILON + 1, size=shared.shape)
    shared = np.maximum(shared + noise, 0)
    vectors = np.concatenate([shared, own.vectors[: size - n_shared]])
    return Community(name=name, vectors=vectors, category=category)


def main() -> None:
    generator = VKGenerator(seed=11)
    rng = np.random.default_rng(5)
    anchor = generator.make_community(
        "Fashionable girl", "Beauty_health", 900, page_id=36085261
    )
    candidates = [
        make_candidate(generator, anchor, rng, name, category, size, shared)
        for name, category, size, shared in [
            ("World of beauty", "Beauty_health", 880, 0.36),
            ("Health secrets", "Medicine", 860, 0.16),
            ("Successful girl", "Relationship_family", 940, 0.24),
            ("Sportshacker", "Sport", 1000, 0.08),
            ("Football Europe", "Sport", 980, 0.02),
        ]
    ]

    print(f"anchor brand: {anchor.name!r} ({len(anchor)} subscribers)\n")

    print("== phase 1: approximate screening (Ap-MinMax) ==")
    screener = PartnerRecommender(VK_EPSILON, method="ap-minmax")
    for score in screener.rank(anchor, candidates):
        print(f"  {score.candidate:24s} similarity = {100 * score.similarity:6.2f}%")

    print("\n== phase 2: exact refinement of the >= 10% shortlist (Ex-MinMax) ==")
    pipeline = PartnerRecommender(VK_EPSILON, method="ap-minmax")
    for score in pipeline.shortlist(anchor, candidates, min_similarity=0.10):
        print(
            f"  {score.candidate:24s} similarity = {100 * score.similarity:6.2f}%  "
            f"(matched {score.result.n_matched} of {score.result.size_b})"
        )


if __name__ == "__main__":
    main()
