"""Broadcast recommendation (Section 1.2, case ii.b).

The platform compares a sportswear brand ("Nike") against competitor
pages and schedules cross-recommendations in priority order: the most
similar brand is recommended to Nike's followers at the peak engagement
hour, the runner-up at the second-highest hour, and so on — the paper's
Nike/Adidas/Puma scenario.

Run:  python examples/broadcast_prioritization.py
"""

from __future__ import annotations

import numpy as np

from repro import Community, VKGenerator
from repro.apps import BroadcastPlanner, suggest_content_features
from repro.datasets import VK_EPSILON


def brand_with_shared_audience(
    generator: VKGenerator,
    anchor: Community,
    rng: np.random.Generator,
    name: str,
    size: int,
    shared_fraction: float,
) -> Community:
    """A competitor brand sharing part of the anchor's audience."""
    own = generator.make_community(name, anchor.category, size, seed_key=name)
    n_shared = int(shared_fraction * size)
    rows = rng.choice(len(anchor), size=n_shared, replace=False)
    shared = np.maximum(
        anchor.vectors[rows]
        + rng.integers(-VK_EPSILON, VK_EPSILON + 1, size=(n_shared, anchor.n_dims)),
        0,
    )
    vectors = np.concatenate([shared, own.vectors[: size - n_shared]])
    return Community(name=name, vectors=vectors, category=anchor.category)


def main() -> None:
    generator = VKGenerator(seed=23)
    rng = np.random.default_rng(42)
    nike = generator.make_community("Nike", "Sport", 800)
    competitors = [
        brand_with_shared_audience(generator, nike, rng, "Adidas", 850, 0.34),
        brand_with_shared_audience(generator, nike, rng, "Puma", 780, 0.22),
        brand_with_shared_audience(generator, nike, rng, "Reebok", 820, 0.12),
        brand_with_shared_audience(generator, nike, rng, "Asics", 760, 0.05),
    ]

    planner = BroadcastPlanner(VK_EPSILON, method="ap-minmax")
    print(f"broadcast plan anchored on {nike.name!r} ({len(nike)} followers):\n")
    for slot in planner.plan(nike, competitors):
        print(
            f"  engagement hour #{slot.hour_rank}: recommend "
            f"{slot.target_community!r} (similarity "
            f"{100 * slot.similarity:.2f}%) to {slot.audience}"
        )

    print("\ncontent features for Nike's next post (case ii.c):")
    for suggestion in suggest_content_features(
        nike, competitors, epsilon=VK_EPSILON, coherent_threshold=0.15
    ):
        print(
            f"  {suggestion.feature:8s} -> {suggestion.role:8s} "
            f"(similarity {100 * suggestion.similarity:.2f}%)"
        )


if __name__ == "__main__":
    main()
