"""Mini scalability study (Table 11 of the paper).

Times Ex-MinMax on growing couple sizes for a few categories, the way
Table 11 reports four size points per category.  Sizes are the paper's
averages scaled down so the script finishes in well under a minute; use
``repro-csj table11`` for the full 20-category sweep.

Run:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.analysis import render_scalability_table, run_scalability


def main() -> None:
    scale = 1 / 128
    cells = run_scalability(
        scale=scale,
        seed=7,
        categories=("Job_search", "Medicine", "Sport", "Entertainment"),
        steps=(1, 2, 3, 4),
    )
    print(render_scalability_table(cells, scale=scale))
    print()
    for category in ("Job_search", "Entertainment"):
        series = [cell for cell in cells if cell.category == category]
        first, last = series[0], series[-1]
        growth = last.elapsed_seconds / max(first.elapsed_seconds, 1e-9)
        size_growth = last.average_size / first.average_size
        print(
            f"{category}: size grew {size_growth:.1f}x "
            f"(from {first.average_size:,} to {last.average_size:,}), "
            f"time grew {growth:.1f}x"
        )


if __name__ == "__main__":
    main()
