"""Quickstart: compute the CSJ similarity of two communities.

Builds the paper's couple cID 1 ("Quick Recipes" vs "Salads | Best
Recipes") at a small scale, runs all six methods on it, and prints the
Eq. (1) similarities with their wall-clock times.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ALL_METHODS, VKGenerator, build_couple, csj_similarity
from repro.algorithms import method_display_name
from repro.datasets import PAPER_COUPLES, VK_EPSILON


def main() -> None:
    generator = VKGenerator(seed=7)
    spec = PAPER_COUPLES[0]
    community_b, community_a = build_couple(spec, generator, scale=1 / 128)
    print(
        f"cID {spec.c_id}: {community_b.name!r} (|B|={len(community_b)}) vs "
        f"{community_a.name!r} (|A|={len(community_a)}), epsilon={VK_EPSILON}"
    )
    print(f"paper's exact similarity at full scale: "
          f"{100 * spec.target_similarity_vk:.2f}%\n")
    for method in ALL_METHODS:
        result = csj_similarity(
            community_b, community_a, epsilon=VK_EPSILON, method=method
        )
        kind = "exact" if result.exact else "approx"
        print(
            f"{method_display_name(method):12s} [{kind}] "
            f"similarity = {result.similarity_percent:6.2f}%  "
            f"matched = {result.n_matched:4d}  "
            f"time = {result.elapsed_seconds * 1000:7.1f} ms"
        )


if __name__ == "__main__":
    main()
