#!/usr/bin/env bash
# Tiny-scale smoke run of the engine benchmarks.
#
# Exercises the full bench code path (reference vs engine-serial vs
# engine-parallel vs cache-warm, byte-identical ranking assertions, the
# supervised/retry-path faults bench, the serving-layer load and
# burst-shedding benches, the sketch pre-filter bench, plus the
# incremental delta-maintenance bench, the persistent-catalog bench
# and the shard-scaling bench) in a few seconds.  Smoke mode
# skips the speedup assertions and does NOT overwrite BENCH_engine.json
# — run the benches without these knobs to record real numbers
# (including the "faults", "serve", "sketch", "delta", "catalog" and
# "shard" sections).
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_ENGINE_SMOKE=1
export REPRO_BENCH_ENGINE_BANDS=3
export REPRO_BENCH_ENGINE_PER_BAND=3
export REPRO_BENCH_ENGINE_USERS=40
export REPRO_BENCH_ENGINE_DIMS=5
export REPRO_BENCH_ENGINE_N_JOBS=2

export REPRO_BENCH_SERVE_SMOKE=1
export REPRO_BENCH_SERVE_CLIENTS=2
export REPRO_BENCH_SERVE_REQUESTS=10
export REPRO_BENCH_SERVE_BANDS=2
export REPRO_BENCH_SERVE_PER_BAND=2
export REPRO_BENCH_SERVE_USERS=30

export REPRO_BENCH_SKETCH_SMOKE=1
export REPRO_BENCH_SKETCH_BANDS=4
export REPRO_BENCH_SKETCH_PER_BAND=3
export REPRO_BENCH_SKETCH_USERS=12
export REPRO_BENCH_SKETCH_DIMS=4
export REPRO_BENCH_SKETCH_SAMPLE_PAIRS=24

export REPRO_BENCH_DELTA_SMOKE=1
export REPRO_BENCH_DELTA_USERS=60
export REPRO_BENCH_DELTA_EVENTS=200
export REPRO_BENCH_DELTA_RECOMPUTE_SAMPLE=20
export REPRO_BENCH_DELTA_CHECK_EVERY=40

export REPRO_BENCH_CATALOG_SMOKE=1
export REPRO_BENCH_CATALOG_BANDS=6
export REPRO_BENCH_CATALOG_PER_BAND=3
export REPRO_BENCH_CATALOG_USERS=10
export REPRO_BENCH_CATALOG_DIMS=4

export REPRO_BENCH_SHARD_SMOKE=1
export REPRO_BENCH_SHARD_GROUPS=8
export REPRO_BENCH_SHARD_PER_GROUP=3
export REPRO_BENCH_SHARD_USERS=6
export REPRO_BENCH_SHARD_SHARDS=1,2

PYTHONPATH=src python -m pytest \
  benchmarks/bench_engine_batch.py benchmarks/bench_serve_load.py \
  benchmarks/bench_sketch_prefilter.py benchmarks/bench_incremental_updates.py \
  benchmarks/bench_catalog.py benchmarks/bench_shard_scaling.py \
  -m bench -q -s "$@"
