#!/usr/bin/env bash
# Local equivalent of the CI lint gate.
#
#   scripts/lint.sh                    # lint src/repro (+ ruff/mypy when installed)
#   scripts/lint.sh src tests          # explicit targets for repro.lint
#   scripts/lint.sh --diff [ref]       # only findings on lines changed vs ref
#                                      # (default ref: origin/main)
#   scripts/lint.sh --baseline-update  # re-acknowledge current findings in
#                                      # lint_baseline.json (new entries get a
#                                      # TODO justification to fill in)
#
# repro.lint is pure stdlib and always runs.  ruff and mypy are
# optional extras (`pip install -e ".[lint]"`); when absent they are
# skipped with a note instead of failing, so the script works in
# minimal environments.
set -euo pipefail
cd "$(dirname "$0")/.."

lint_args=()
targets=()
while [ $# -gt 0 ]; do
  case "$1" in
    --diff)
      ref="origin/main"
      if [ $# -gt 1 ] && [[ "$2" != -* ]]; then
        ref="$2"
        shift
      fi
      lint_args+=(--changed-only "$ref")
      ;;
    --baseline-update)
      PYTHONPATH=src python -m repro.lint src/repro --baseline-update
      echo "review lint_baseline.json: replace any TODO justification"
      exit 0
      ;;
    *)
      targets+=("$1")
      ;;
  esac
  shift
done
if [ ${#targets[@]} -eq 0 ]; then
  targets=(src/repro)
fi

status=0

echo "== repro.lint =="
PYTHONPATH=src python -m repro.lint "${targets[@]}" ${lint_args[@]+"${lint_args[@]}"} || status=1

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
  ruff check src tests || status=1
else
  echo "ruff not installed; skipping (pip install -e '.[lint]')"
fi

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
  mypy src/repro/lint src/repro/obs || status=1
else
  echo "mypy not installed; skipping (pip install -e '.[lint]')"
fi

exit $status
