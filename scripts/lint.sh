#!/usr/bin/env bash
# Local equivalent of the CI lint gate.
#
#   scripts/lint.sh            # lint src/repro (+ ruff/mypy when installed)
#   scripts/lint.sh src tests  # explicit targets for repro.lint
#
# repro.lint is pure stdlib and always runs.  ruff and mypy are
# optional extras (`pip install -e ".[lint]"`); when absent they are
# skipped with a note instead of failing, so the script works in
# minimal environments.
set -euo pipefail
cd "$(dirname "$0")/.."

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
  targets=(src/repro)
fi

status=0

echo "== repro.lint =="
PYTHONPATH=src python -m repro.lint "${targets[@]}" || status=1

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
  ruff check src tests || status=1
else
  echo "ruff not installed; skipping (pip install -e '.[lint]')"
fi

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
  mypy src/repro/lint src/repro/obs || status=1
else
  echo "mypy not installed; skipping (pip install -e '.[lint]')"
fi

exit $status
